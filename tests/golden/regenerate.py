#!/usr/bin/env python
"""Regenerate the golden regression fixtures.

Run from the repository root (only when an *intentional* numeric change
ships — the diff in the fixtures is the reviewable artifact):

    PYTHONPATH=src python tests/golden/regenerate.py

Each fixture is a compressed ``.npz`` holding a fixed-seed end-to-end
trace of the full accelerator stack: the minibatch outputs and the first
conv layer's photonic feature maps, for LeNet-5 and the GoogLeNet stem,
in ideal and DAC/ADC-quantized modes.  ``tests/test_golden_regression.py``
recomputes the traces and fails loudly on any bit of drift.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.core.accelerator import PCNNA, PhotonicConvolution
from repro.nn.layers import Conv2D
from repro.workloads import serving_batch, serving_network

GOLDEN_DIR = Path(__file__).resolve().parent
BATCH = 2
INPUT_SEED = 1234
WEIGHT_SEED = 7
SCALE = 0.02  # GoogLeNet-stem channel scale (tractable, fixed forever)

CASES: tuple[tuple[str, str], ...] = (
    ("lenet5", "ideal"),
    ("lenet5", "quantized"),
    ("googlenet-stem", "ideal"),
    ("googlenet-stem", "quantized"),
)


def build_accelerator(mode: str) -> PCNNA:
    """The accelerator under golden test for one mode."""
    accelerator = PCNNA()
    if mode == "quantized":
        accelerator.engine = PhotonicConvolution(
            accelerator.config, method="device", quantize=True
        )
    elif mode != "ideal":
        raise ValueError(f"unknown golden mode {mode!r}")
    return accelerator


def compute_trace(network_name: str, mode: str) -> dict[str, np.ndarray]:
    """One deterministic end-to-end trace (outputs + first conv maps)."""
    network = serving_network(network_name, scale=SCALE, seed=WEIGHT_SEED)
    inputs = serving_batch(network, BATCH, seed=INPUT_SEED)
    accelerator = build_accelerator(mode)
    outputs = accelerator.run_network(network, inputs)

    first_conv = next(
        layer for layer in network.layers if isinstance(layer, Conv2D)
    )
    conv_maps = accelerator.convolve(
        inputs, first_conv.weights, first_conv.stride, first_conv.padding
    )
    return {
        # The raw inputs would dominate the fixture size (megabytes for
        # 224x224 stacks); a digest guards the seeded generators just as
        # strictly.
        "inputs_sha256": input_digest(inputs),
        "outputs": outputs,
        "first_conv_maps": conv_maps,
        "meta_batch": np.array(BATCH),
        "meta_input_seed": np.array(INPUT_SEED),
        "meta_weight_seed": np.array(WEIGHT_SEED),
        "meta_scale": np.array(SCALE),
    }


def input_digest(inputs: np.ndarray) -> np.ndarray:
    """SHA-256 of the input batch's exact bytes, as a uint8 array."""
    digest = hashlib.sha256(np.ascontiguousarray(inputs).tobytes()).digest()
    return np.frombuffer(digest, dtype=np.uint8)


def fixture_path(network_name: str, mode: str) -> Path:
    """Location of one golden fixture."""
    return GOLDEN_DIR / f"{network_name}_{mode}.npz"


def main() -> None:
    for network_name, mode in CASES:
        trace = compute_trace(network_name, mode)
        path = fixture_path(network_name, mode)
        np.savez_compressed(path, **trace)
        print(
            f"wrote {path.relative_to(GOLDEN_DIR.parent.parent)} "
            f"(outputs {trace['outputs'].shape}, "
            f"conv {trace['first_conv_maps'].shape})"
        )


if __name__ == "__main__":
    main()
