"""Tests for the MRR-bank mapping (paper Fig. 2, section IV)."""

import pytest

from repro.core.config import PCNNAConfig
from repro.core.mapping import fig2_ring_counts, map_layer
from repro.nn.shapes import ConvLayerSpec
from repro.workloads import alexnet_layer


class TestFig2:
    def test_paper_scenario_counts(self):
        # 16 x 16 input, five 3 x 3 kernels, one channel.
        counts = fig2_ring_counts()
        assert counts.rings_per_kernel_unfiltered == 256
        assert counts.rings_per_kernel_filtered == 9
        assert counts.total_unfiltered == 1280
        assert counts.total_filtered == 45

    def test_savings_ratio(self):
        counts = fig2_ring_counts()
        assert counts.savings == pytest.approx(256 / 9)

    def test_custom_scenario(self):
        counts = fig2_ring_counts(input_side=8, kernel_size=2, num_kernels=3)
        assert counts.rings_per_kernel_unfiltered == 64
        assert counts.rings_per_kernel_filtered == 4
        assert counts.total_filtered == 12

    def test_multichannel(self):
        counts = fig2_ring_counts(channels=4)
        assert counts.rings_per_kernel_filtered == 36
        assert counts.rings_per_kernel_unfiltered == 1024


class TestMapLayer:
    def test_filtered_rings_per_bank_is_nkernel(self):
        spec = alexnet_layer("conv4")
        mapping = map_layer(spec)
        assert mapping.rings_per_bank == 3456
        assert mapping.filtered

    def test_unfiltered_rings_per_bank_is_ninput(self):
        spec = alexnet_layer("conv1")
        mapping = map_layer(spec, filtered=False)
        assert mapping.rings_per_bank == 150_528

    def test_total_rings_matches_eq5(self):
        spec = alexnet_layer("conv2")
        mapping = map_layer(spec)
        assert mapping.total_rings == spec.num_kernels * spec.n_kernel

    def test_banks_instantiated_uncapped(self):
        spec = alexnet_layer("conv5")
        mapping = map_layer(spec)
        assert len(mapping.banks) == 256
        assert mapping.parallel_kernel_passes == 1

    def test_bank_cap_forces_passes(self):
        spec = alexnet_layer("conv4")  # 384 kernels.
        config = PCNNAConfig(max_parallel_kernels=100)
        mapping = map_layer(spec, config)
        assert len(mapping.banks) == 100
        assert mapping.parallel_kernel_passes == 4

    def test_wavelength_groups_for_large_fields(self):
        spec = alexnet_layer("conv4")  # 3456 wavelengths needed.
        mapping = map_layer(spec)
        # A single ring FSR fits far fewer than 3456 100-GHz channels.
        assert mapping.wavelength_groups > 1

    def test_small_field_single_group(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=1, num_kernels=4)
        mapping = map_layer(spec)
        assert mapping.wavelength_groups == 1

    def test_wdm_grid_sized_to_group(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=2, num_kernels=4)
        mapping = map_layer(spec)
        grid = mapping.wdm_grid()
        # 18 wavelengths over 2 FSR-limited groups -> 9-channel grid.
        assert mapping.wavelength_groups == 2
        assert grid.num_channels == 9
        assert (
            grid.num_channels * mapping.wavelength_groups
            >= mapping.wavelengths_needed
        )

    def test_bank_channel_lookup(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=2, num_kernels=2)
        mapping = map_layer(spec)
        bank = mapping.banks[0]
        assert bank.channel_for(0, 0, 0, spec.m) == 0
        assert bank.channel_for(1, 2, 2, spec.m) == 17

    def test_bank_channel_lookup_out_of_range(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=1, num_kernels=1)
        with pytest.raises(IndexError):
            map_layer(spec).banks[0].channel_for(1, 0, 0, spec.m)
