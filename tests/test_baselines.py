"""Tests for the Eyeriss / YodaNN / roofline baseline models."""

import pytest

from repro.baselines import (
    DATACENTER_GPU,
    DESKTOP_CPU,
    EyerissModel,
    RooflineDevice,
    YodaNNModel,
    published_layer_time_s,
)
from repro.workloads import alexnet_conv_specs, alexnet_layer


class TestEyerissPublished:
    def test_batch_times(self):
        assert published_layer_time_s("conv1", per_image=False) == pytest.approx(
            20.9e-3
        )

    def test_per_image_divides_batch(self):
        assert published_layer_time_s("conv1") == pytest.approx(20.9e-3 / 4)

    def test_all_five_layers_present(self):
        for spec in alexnet_conv_specs():
            assert published_layer_time_s(spec.name) > 0

    def test_unknown_layer_rejected(self):
        with pytest.raises(KeyError):
            published_layer_time_s("conv9")

    def test_total_alexnet_around_29ms_per_image(self):
        total = sum(published_layer_time_s(s.name) for s in alexnet_conv_specs())
        # Eyeriss runs AlexNet convs at ~34.7 fps -> ~28.8 ms.
        assert total == pytest.approx(28.8e-3, rel=0.02)


class TestEyerissAnalytical:
    def test_layer_time_formula(self):
        model = EyerissModel()
        spec = alexnet_layer("conv3")
        expected = spec.macs / (168 * model.utilization_for(spec) * 200e6)
        assert model.layer_time_s(spec) == pytest.approx(expected)

    def test_analytical_within_3x_of_published(self):
        # The analytical model is a sanity cross-check, not a replica:
        # published numbers include DRAM stalls and batch effects.
        model = EyerissModel()
        for spec in alexnet_conv_specs():
            ratio = published_layer_time_s(spec.name) / model.layer_time_s(spec)
            assert 1 / 3 < ratio < 3, spec.name

    def test_energy_scales_with_macs(self):
        model = EyerissModel()
        assert model.layer_energy_j(alexnet_layer("conv2")) > model.layer_energy_j(
            alexnet_layer("conv5")
        )

    def test_network_time_sums(self):
        model = EyerissModel()
        specs = alexnet_conv_specs()
        assert model.network_time_s(specs) == pytest.approx(
            sum(model.layer_time_s(s) for s in specs)
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            EyerissModel(num_pes=0)
        with pytest.raises(ValueError):
            EyerissModel(default_utilization=1.5)


class TestYodaNN:
    def test_peak_throughput(self):
        model = YodaNNModel()
        assert model.peak_macs_per_s == pytest.approx(32 * 49 * 480e6)

    def test_faster_than_eyeriss(self):
        # The binary-weight design outruns Eyeriss on every layer.
        yodann = YodaNNModel()
        for spec in alexnet_conv_specs():
            assert yodann.layer_time_s(spec) < published_layer_time_s(spec.name)

    def test_energy_cheaper_than_eyeriss(self):
        yodann = YodaNNModel()
        eyeriss = EyerissModel()
        spec = alexnet_layer("conv1")
        assert yodann.layer_energy_j(spec) < eyeriss.layer_energy_j(spec)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            YodaNNModel(num_sop_units=0)
        with pytest.raises(ValueError):
            YodaNNModel(utilization=0.0)

    def test_network_time_sums(self):
        model = YodaNNModel()
        specs = alexnet_conv_specs()
        assert model.network_time_s(specs) == pytest.approx(
            sum(model.layer_time_s(s) for s in specs)
        )


class TestRoofline:
    def test_compute_vs_memory_bound(self):
        device = RooflineDevice(
            name="t", peak_macs_per_s=1e12, memory_bandwidth_bytes_per_s=1e9
        )
        spec = alexnet_layer("conv1")
        assert device.layer_time_s(spec) == max(
            device.compute_time_s(spec), device.memory_time_s(spec)
        )

    def test_gpu_faster_than_cpu(self):
        specs = alexnet_conv_specs()
        assert DATACENTER_GPU.network_time_s(specs) < DESKTOP_CPU.network_time_s(
            specs
        )

    def test_layer_bytes(self):
        spec = alexnet_layer("conv5")
        expected = (spec.n_input + spec.total_weights + spec.n_output) * 4
        assert DESKTOP_CPU.layer_bytes(spec) == expected

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RooflineDevice("t", 0.0, 1e9)
        with pytest.raises(ValueError):
            RooflineDevice("t", 1e9, -1.0)
