"""Tests for the cycle-level timing simulator and its agreement with the
paper's analytical model."""

import pytest

from repro.core.config import PCNNAConfig, paper_assumptions
from repro.core.timing import simulate_layer, simulate_network
from repro.nn.shapes import ConvLayerSpec
from repro.workloads import alexnet_conv_specs, alexnet_layer


class TestAgreementWithAnalyticalModel:
    """Under the paper's implicit assumptions (memory keeps up, no ADC
    serialization), the simulator must track eq. 7/8 closely."""

    def test_alexnet_agreement_within_25_percent(self):
        config = paper_assumptions()
        for spec in alexnet_conv_specs():
            result = simulate_layer(spec, config, include_adc=False)
            # Slack comes from row-start window refills and per-DAC ceil.
            assert 1.0 <= result.analytical_agreement < 1.25, spec.name

    def test_simulated_never_faster_than_analytical(self):
        config = paper_assumptions()
        for spec in alexnet_conv_specs():
            result = simulate_layer(spec, config, include_adc=False)
            assert result.pipelined_time_s >= result.analytical_full_s

    def test_pipelined_never_slower_than_serial(self):
        config = paper_assumptions()
        for spec in alexnet_conv_specs():
            result = simulate_layer(spec, config)
            # Serial = sum of all stages; pipelined overlaps them.
            assert result.pipelined_time_s <= result.serial_time_s * 1.01


class TestBottleneckIdentification:
    def test_dac_bound_under_paper_assumptions(self):
        config = paper_assumptions()
        result = simulate_layer(
            alexnet_layer("conv4"), config, include_adc=False
        )
        assert result.bottleneck == "convert"
        assert result.dac_bound_locations > 0

    def test_adc_binds_large_k_with_one_adc(self):
        # Digitizing 384 outputs per location at 2.8 GSa/s exceeds the
        # DAC refill — the serialization the paper's model omits.
        config = paper_assumptions()
        result = simulate_layer(alexnet_layer("conv4"), config, include_adc=True)
        assert result.bottleneck == "digitize"
        assert result.adc_bound_locations > 0

    def test_parallel_adcs_restore_dac_bound(self):
        from dataclasses import replace

        config = replace(paper_assumptions(), num_adcs=64)
        result = simulate_layer(alexnet_layer("conv4"), config, include_adc=True)
        assert result.bottleneck == "convert"

    def test_ddr3_is_memory_bound(self):
        # With a realistic DDR3 channel the fetch stage dominates — the
        # extension finding recorded in EXPERIMENTS.md.
        result = simulate_layer(
            alexnet_layer("conv4"), PCNNAConfig(), include_adc=False
        )
        assert result.bottleneck == "fetch"


class TestTrafficAndWeights:
    def test_dram_traffic_positive(self):
        result = simulate_layer(alexnet_layer("conv5"), paper_assumptions())
        assert result.dram_bytes > 0

    def test_weight_load_accounts_all_weights(self):
        spec = alexnet_layer("conv1")
        result = simulate_layer(spec, paper_assumptions())
        # One 6 GSa/s weight DAC: >= 34 848 conversions.
        assert result.weight_load_time_s >= spec.total_weights / 6e9

    def test_sram_capacity_changes_fetch_traffic(self):
        from dataclasses import replace

        from repro.electronics.sram import SramSpec

        spec = alexnet_layer("conv4")  # Working set exceeds 8 K words.
        small = simulate_layer(spec, paper_assumptions(), include_adc=False)
        big_sram = replace(
            paper_assumptions(), sram=SramSpec(capacity_bits=1024 * 1024)
        )
        large = simulate_layer(spec, big_sram, include_adc=False)
        # A big enough cache enables first-touch-only fetching.
        assert large.dram_bytes < small.dram_bytes


class TestKernelPasses:
    def test_bank_cap_scales_time(self):
        from dataclasses import replace

        spec = alexnet_layer("conv4")
        full = simulate_layer(spec, paper_assumptions(), include_adc=False)
        capped_config = replace(paper_assumptions(), max_parallel_kernels=96)
        capped = simulate_layer(spec, capped_config, include_adc=False)
        # 384 kernels over 96 banks = 4 passes, ~4x the time.
        assert capped.pipelined_time_s == pytest.approx(
            4 * full.pipelined_time_s, rel=0.05
        )


class TestSimulateNetwork:
    def test_layer_order_preserved(self):
        results = simulate_network(alexnet_conv_specs(), paper_assumptions())
        assert [result.name for result in results] == [
            "conv1", "conv2", "conv3", "conv4", "conv5",
        ]

    def test_small_synthetic_layer(self):
        spec = ConvLayerSpec("tiny", n=6, m=3, nc=2, num_kernels=4)
        result = simulate_layer(spec, paper_assumptions())
        assert result.pipelined_time_s > 0
        assert result.stages.compute_s == pytest.approx(
            spec.n_locs * 0.2e-9
        )
