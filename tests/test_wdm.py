"""Tests for the WDM channel grid."""

import numpy as np
import pytest

from repro.photonics.microring import MicroringDesign
from repro.photonics.wdm import WdmGrid, channel_count_limit


class TestWdmGrid:
    def test_single_channel_sits_at_center(self):
        grid = WdmGrid(num_channels=1, center_frequency_hz=193e12)
        assert grid.frequencies_hz[0] == pytest.approx(193e12)

    def test_rejects_nonpositive_channels(self):
        with pytest.raises(ValueError):
            WdmGrid(num_channels=0)

    def test_rejects_nonpositive_spacing(self):
        with pytest.raises(ValueError):
            WdmGrid(num_channels=4, spacing_hz=0.0)

    def test_rejects_nonpositive_center(self):
        with pytest.raises(ValueError):
            WdmGrid(num_channels=4, center_frequency_hz=-1.0)

    def test_frequencies_ascending_and_uniform(self):
        grid = WdmGrid(num_channels=8, spacing_hz=100e9)
        diffs = np.diff(grid.frequencies_hz)
        assert np.allclose(diffs, 100e9)

    def test_grid_centered(self):
        grid = WdmGrid(num_channels=5, center_frequency_hz=193e12)
        assert grid.frequencies_hz.mean() == pytest.approx(193e12)

    def test_even_channel_count_centered(self):
        grid = WdmGrid(num_channels=4, center_frequency_hz=193e12)
        assert grid.frequencies_hz.mean() == pytest.approx(193e12)

    def test_span(self):
        grid = WdmGrid(num_channels=11, spacing_hz=50e9)
        assert grid.span_hz == pytest.approx(10 * 50e9)

    def test_wavelengths_descend_as_frequencies_ascend(self):
        grid = WdmGrid(num_channels=6)
        assert np.all(np.diff(grid.wavelengths_m) < 0)

    def test_frequency_of_matches_array(self):
        grid = WdmGrid(num_channels=7)
        for channel in range(7):
            assert grid.frequency_of(channel) == pytest.approx(
                grid.frequencies_hz[channel]
            )

    def test_frequency_of_rejects_out_of_range(self):
        grid = WdmGrid(num_channels=3)
        with pytest.raises(IndexError):
            grid.frequency_of(3)
        with pytest.raises(IndexError):
            grid.frequency_of(-1)

    def test_fits_within_fsr(self):
        grid = WdmGrid(num_channels=10, spacing_hz=100e9)
        assert grid.fits_within_fsr(1e12)
        assert not grid.fits_within_fsr(900e9)


class TestChannelCountLimit:
    def test_matches_grid_fit(self):
        fsr = MicroringDesign().free_spectral_range_hz()
        limit = channel_count_limit(fsr, spacing_hz=100e9)
        assert WdmGrid(limit, spacing_hz=100e9).fits_within_fsr(fsr)
        assert not WdmGrid(limit + 1, spacing_hz=100e9).fits_within_fsr(fsr)

    def test_tiny_fsr_still_allows_one_channel(self):
        assert channel_count_limit(1.0, spacing_hz=100e9) >= 1

    def test_rejects_nonpositive_fsr(self):
        with pytest.raises(ValueError):
            channel_count_limit(0.0)

    def test_rejects_nonpositive_spacing(self):
        with pytest.raises(ValueError):
            channel_count_limit(1e12, spacing_hz=-1.0)

    def test_scales_with_fsr(self):
        small = channel_count_limit(1e12, spacing_hz=100e9)
        large = channel_count_limit(2e12, spacing_hz=100e9)
        assert large > small
