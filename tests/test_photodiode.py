"""Tests for photodiode and balanced-photodetector models."""

import numpy as np
import pytest

from repro.photonics.noise import NoiseConfig, ideal
from repro.photonics.photodiode import (
    BalancedPhotodetector,
    Photodiode,
    PhotodiodeSpec,
)


class TestPhotodiodeSpec:
    def test_rejects_nonpositive_responsivity(self):
        with pytest.raises(ValueError):
            PhotodiodeSpec(responsivity_a_per_w=0.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            PhotodiodeSpec(bandwidth_hz=-1.0)

    def test_rejects_negative_dark_current(self):
        with pytest.raises(ValueError):
            PhotodiodeSpec(dark_current_a=-1e-9)

    def test_shot_noise_grows_with_current(self):
        spec = PhotodiodeSpec()
        assert spec.shot_noise_sigma_a(1e-3) > spec.shot_noise_sigma_a(1e-6)

    def test_shot_noise_formula(self):
        spec = PhotodiodeSpec(bandwidth_hz=1e9, dark_current_a=0.0)
        # sigma^2 = 2 q I B.
        expected = np.sqrt(2 * 1.602176634e-19 * 1e-3 * 1e9)
        assert spec.shot_noise_sigma_a(1e-3) == pytest.approx(expected)

    def test_thermal_noise_formula(self):
        spec = PhotodiodeSpec(
            bandwidth_hz=1e9, load_resistance_ohm=50.0, temperature_k=300.0
        )
        expected = np.sqrt(4 * 1.380649e-23 * 300.0 * 1e9 / 50.0)
        assert spec.thermal_noise_sigma_a() == pytest.approx(expected)


class TestPhotodiode:
    def test_ideal_detection_sums_channels(self):
        pd = Photodiode(PhotodiodeSpec(responsivity_a_per_w=0.8))
        powers = np.array([1e-3, 2e-3, 3e-3])
        assert pd.detect(powers) == pytest.approx(0.8 * 6e-3)

    def test_rejects_negative_power(self):
        pd = Photodiode()
        with pytest.raises(ValueError):
            pd.detect(np.array([1e-3, -1e-6]))

    def test_empty_power_vector_gives_zero(self):
        assert Photodiode().detect(np.array([])) == pytest.approx(0.0)

    def test_noise_perturbs_current(self):
        noise = NoiseConfig(enabled=True, seed=0)
        pd = Photodiode(noise=noise)
        powers = np.full(8, 1e-3)
        samples = {pd.detect(powers) for _ in range(5)}
        assert len(samples) > 1

    def test_noise_zero_mean(self):
        noise = NoiseConfig(enabled=True, seed=3)
        pd = Photodiode(noise=noise)
        powers = np.full(4, 1e-3)
        mean_current = np.mean([pd.detect(powers) for _ in range(3000)])
        ideal_current = Photodiode().detect(powers)
        assert mean_current == pytest.approx(ideal_current, rel=1e-2)

    def test_to_voltage_uses_tia_gain(self):
        pd = Photodiode(PhotodiodeSpec(tia_gain_ohm=1000.0))
        assert pd.to_voltage(1e-3) == pytest.approx(1.0)


class TestBalancedPhotodetector:
    def test_balanced_subtracts(self):
        bpd = BalancedPhotodetector(PhotodiodeSpec(responsivity_a_per_w=1.0))
        drop = np.array([3e-3])
        through = np.array([1e-3])
        assert bpd.detect(drop, through) == pytest.approx(2e-3)

    def test_balanced_can_be_negative(self):
        bpd = BalancedPhotodetector()
        assert bpd.detect(np.array([1e-3]), np.array([2e-3])) < 0

    def test_equal_arms_cancel(self):
        bpd = BalancedPhotodetector()
        powers = np.array([1e-3, 2e-3])
        assert bpd.detect(powers, powers) == pytest.approx(0.0, abs=1e-15)

    def test_implements_signed_weight(self):
        # Drop fraction d realizes weight 2d - 1 for unit power.
        bpd = BalancedPhotodetector(PhotodiodeSpec(responsivity_a_per_w=1.0))
        power = 1e-3
        for weight in (-1.0, -0.5, 0.0, 0.5, 1.0):
            drop_fraction = (1.0 + weight) / 2.0
            current = bpd.detect(
                np.array([power * drop_fraction]),
                np.array([power * (1.0 - drop_fraction)]),
            )
            assert current == pytest.approx(weight * power, abs=1e-18)

    def test_noise_shared_config(self):
        noise = NoiseConfig(enabled=True, seed=5)
        bpd = BalancedPhotodetector(noise=noise)
        assert bpd.noise is noise
