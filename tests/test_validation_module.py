"""Tests for the functional-equivalence validation helpers."""

import numpy as np
import pytest

from repro.core.config import PCNNAConfig
from repro.core.validation import (
    assert_functionally_equivalent,
    compare_photonic_reference,
)
from repro.photonics.noise import NoiseConfig


def random_case(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(2, 6, 6))
    k = rng.normal(size=(3, 2, 3, 3))
    return x, k


class TestCompare:
    def test_ideal_errors_negligible(self):
        x, k = random_case()
        report = compare_photonic_reference(x, k)
        assert report.max_abs_error < 1e-10
        assert report.max_rel_error < 1e-10
        assert report.rms_error < 1e-10

    def test_report_scale_positive(self):
        x, k = random_case(1)
        assert compare_photonic_reference(x, k).reference_scale > 0

    def test_within_tolerance_predicate(self):
        x, k = random_case(2)
        report = compare_photonic_reference(x, k)
        assert report.within(1e-9)
        assert not report.within(0.0)

    def test_quantization_errors_measurable(self):
        x, k = random_case(3)
        report = compare_photonic_reference(x, k, quantize=True)
        assert 0 < report.max_rel_error < 1e-2

    def test_noise_errors_grow_with_sigma(self):
        x, k = random_case(4)

        def error(sigma):
            config = PCNNAConfig(
                noise=NoiseConfig(enabled=True, ring_tuning_sigma=sigma, seed=5)
            )
            return compare_photonic_reference(x, k, config=config).max_rel_error

        assert error(0.001) < error(0.05)

    def test_zero_reference_handled(self):
        x = np.zeros((1, 4, 4))
        k = np.zeros((1, 1, 2, 2))
        report = compare_photonic_reference(x, k)
        assert report.reference_scale == 1.0
        assert report.max_abs_error == 0.0

    def test_stride_padding_paths(self):
        x, k = random_case(6)
        report = compare_photonic_reference(x, k, stride=2, padding=1)
        assert report.max_rel_error < 1e-9


class TestAssert:
    def test_passes_in_ideal_mode(self):
        x, k = random_case(7)
        report = assert_functionally_equivalent(x, k)
        assert report.max_rel_error < 1e-9

    def test_raises_when_noisy(self):
        x, k = random_case(8)
        config = PCNNAConfig(
            noise=NoiseConfig(enabled=True, ring_tuning_sigma=0.1, seed=9)
        )
        with pytest.raises(AssertionError):
            assert_functionally_equivalent(x, k, config=config)

    def test_loose_tolerance_accepts_noise(self):
        x, k = random_case(10)
        config = PCNNAConfig(
            noise=NoiseConfig(enabled=True, ring_tuning_sigma=0.001, seed=11)
        )
        report = assert_functionally_equivalent(
            x, k, config=config, rel_tolerance=0.5
        )
        assert report.max_rel_error < 0.5
