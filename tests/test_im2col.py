"""Tests for im2col / col2im and the receptive-field index map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import (
    col2im_accumulate,
    im2col,
    pad_feature_map,
    receptive_field_indices,
)


class TestPadding:
    def test_zero_padding_identity(self):
        x = np.arange(12.0).reshape(1, 3, 4)
        assert pad_feature_map(x, 0) is x

    def test_padding_shape(self):
        x = np.ones((2, 3, 3))
        padded = pad_feature_map(x, 2)
        assert padded.shape == (2, 7, 7)

    def test_padding_zeros_border(self):
        x = np.ones((1, 2, 2))
        padded = pad_feature_map(x, 1)
        assert padded[0, 0, 0] == 0.0
        assert padded[0, 1, 1] == 1.0

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            pad_feature_map(np.ones((3, 3)), 1)

    def test_rejects_negative_padding(self):
        with pytest.raises(ValueError):
            pad_feature_map(np.ones((1, 3, 3)), -1)


class TestReceptiveFieldIndices:
    def test_shape(self):
        indices = receptive_field_indices(8, 8, 3, kernel_size=3, stride=1, padding=0)
        assert indices.shape == (36, 27)

    def test_first_window_is_top_left(self):
        indices = receptive_field_indices(4, 4, 1, kernel_size=2, stride=1, padding=0)
        assert indices[0].tolist() == [0, 1, 4, 5]

    def test_stride_moves_window(self):
        indices = receptive_field_indices(4, 4, 1, kernel_size=2, stride=2, padding=0)
        assert indices[1].tolist() == [2, 3, 6, 7]

    def test_channel_offsets(self):
        indices = receptive_field_indices(2, 2, 2, kernel_size=2, stride=1, padding=0)
        # Second channel's indices are offset by H*W = 4.
        assert indices[0].tolist() == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_all_indices_within_padded_tensor(self):
        indices = receptive_field_indices(5, 5, 2, kernel_size=3, stride=2, padding=1)
        assert indices.min() >= 0
        assert indices.max() < 2 * 7 * 7

    def test_indices_unique_within_window(self):
        indices = receptive_field_indices(6, 6, 3, kernel_size=3, stride=1, padding=2)
        for row in indices:
            assert len(set(row.tolist())) == len(row)


class TestIm2Col:
    def test_matches_manual_extraction(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        columns = im2col(x, kernel_size=2, stride=2, padding=0)
        assert columns.shape == (4, 4)
        assert columns[:, 0].tolist() == [0, 1, 4, 5]
        assert columns[:, 3].tolist() == [10, 11, 14, 15]

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            im2col(np.ones((4, 4)), 2, 1, 0)

    def test_padding_contributes_zeros(self):
        x = np.ones((1, 2, 2))
        columns = im2col(x, kernel_size=3, stride=1, padding=1)
        # Center window covers all four ones plus five zeros.
        assert columns.shape == (9, 4)
        assert columns[:, 0].sum() == 4.0

    @given(
        channels=st.integers(min_value=1, max_value=3),
        side=st.integers(min_value=2, max_value=8),
        kernel=st.integers(min_value=1, max_value=3),
        stride=st.integers(min_value=1, max_value=2),
        padding=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_columns_match_direct_windows(self, channels, side, kernel, stride, padding):
        if kernel > side + 2 * padding:
            return
        rng = np.random.default_rng(0)
        x = rng.normal(size=(channels, side, side))
        columns = im2col(x, kernel, stride, padding)
        padded = pad_feature_map(x, padding)
        out_side = (side + 2 * padding - kernel) // stride + 1
        for oy in range(out_side):
            for ox in range(out_side):
                window = padded[
                    :, oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel
                ].reshape(-1)
                assert np.array_equal(columns[:, oy * out_side + ox], window)


class TestCol2Im:
    def test_non_overlapping_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 4, 4))
        columns = im2col(x, kernel_size=2, stride=2, padding=0)
        recovered = col2im_accumulate(columns, (2, 4, 4), 2, 2, 0)
        assert np.allclose(recovered, x)

    def test_overlapping_accumulates(self):
        x = np.ones((1, 3, 3))
        columns = im2col(x, kernel_size=2, stride=1, padding=0)
        accumulated = col2im_accumulate(columns, (1, 3, 3), 2, 1, 0)
        # Center value is covered by all four windows.
        assert accumulated[0, 1, 1] == 4.0
        assert accumulated[0, 0, 0] == 1.0

    def test_shape_check(self):
        with pytest.raises(ValueError):
            col2im_accumulate(np.zeros((4, 5)), (1, 4, 4), 2, 2, 0)

    def test_padding_stripped(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 4, 4))
        columns = im2col(x, kernel_size=3, stride=3, padding=1)
        recovered = col2im_accumulate(columns, (1, 4, 4), 3, 3, 1)
        assert recovered.shape == (1, 4, 4)
        assert np.allclose(recovered, x)
