"""Tests for the discrete-event pipeline simulator."""

import numpy as np
import pytest

from repro.core.config import PCNNAConfig, paper_assumptions
from repro.core.pipeline import (
    STAGE_NAMES,
    max_approximation_error,
    simulate_pipeline,
    stage_service_times,
)
from repro.nn.shapes import ConvLayerSpec
from repro.workloads import alexnet_conv_specs, alexnet_layer


class TestServiceTimes:
    def test_shape(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=2, num_kernels=4)
        service = stage_service_times(spec)
        assert service.shape == (4, spec.n_locs)

    def test_compute_stage_is_one_fast_cycle(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=2, num_kernels=4)
        service = stage_service_times(spec)
        assert np.allclose(service[2], 0.2e-9)

    def test_adc_disabled_zeroes_digitize(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=2, num_kernels=4)
        service = stage_service_times(spec, include_adc=False)
        assert np.all(service[3] == 0.0)

    def test_all_times_nonnegative(self):
        service = stage_service_times(alexnet_layer("conv2"))
        assert np.all(service >= 0.0)

    def test_first_location_has_largest_convert(self):
        # The first location converts the full window.
        spec = ConvLayerSpec("t", n=10, m=3, nc=4, num_kernels=2)
        service = stage_service_times(spec)
        assert service[1, 0] == service[1].max()


class TestPipelineSimulation:
    def test_makespan_at_least_critical_stage(self):
        spec = alexnet_layer("conv4")
        result = simulate_pipeline(spec, paper_assumptions(), include_adc=False)
        assert result.makespan_s >= max(result.stage_busy_s)

    def test_makespan_at_most_serial_sum(self):
        spec = alexnet_layer("conv3")
        result = simulate_pipeline(spec, paper_assumptions())
        assert result.makespan_s <= sum(result.stage_busy_s) + 1e-12

    def test_critical_stage_is_convert_under_paper_assumptions(self):
        result = simulate_pipeline(
            alexnet_layer("conv4"), paper_assumptions(), include_adc=False
        )
        assert result.critical_stage == "convert"
        # The bottleneck stage is essentially saturated.
        assert result.stage_utilization[1] > 0.95

    def test_critical_stage_is_digitize_with_one_adc(self):
        result = simulate_pipeline(
            alexnet_layer("conv4"), paper_assumptions(), include_adc=True
        )
        assert result.critical_stage == "digitize"

    def test_stage_names_order(self):
        assert STAGE_NAMES == ("fetch", "convert", "compute", "digitize")

    def test_single_location_layer(self):
        spec = ConvLayerSpec("t", n=3, m=3, nc=1, num_kernels=2)
        result = simulate_pipeline(spec, paper_assumptions())
        # One job: makespan is the serial traversal.
        assert result.makespan_s == pytest.approx(sum(result.stage_busy_s))


class TestClosedFormBracket:
    def test_timing_model_overestimates_slightly(self):
        """The timing.py max() model must be an upper bound within ~10 %."""
        for spec in alexnet_conv_specs():
            error = max_approximation_error(
                spec, paper_assumptions(), include_adc=False
            )
            assert 0.0 <= error < 0.10, spec.name

    def test_bracket_holds_with_adc(self):
        for spec in alexnet_conv_specs():
            error = max_approximation_error(spec, paper_assumptions())
            assert -0.01 <= error < 0.15, spec.name

    def test_exact_vs_analytical_order_of_magnitude(self):
        from repro.core.analytical import full_system_time_s

        spec = alexnet_layer("conv4")
        exact = simulate_pipeline(
            spec, paper_assumptions(), include_adc=False
        ).makespan_s
        assert exact == pytest.approx(full_system_time_s(spec), rel=0.25)
