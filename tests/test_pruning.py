"""Tests for sparsity-aware ring allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pruning import (
    prune_kernels,
    pruned_conv_error,
    sparse_mapping_report,
    threshold_for_sparsity,
)


class TestPruneKernels:
    def test_zero_threshold_keeps_everything(self):
        rng = np.random.default_rng(0)
        kernels = rng.normal(size=(4, 2, 3, 3))
        pruned, mask = prune_kernels(kernels, 0.0)
        assert np.array_equal(pruned, kernels)
        assert mask.all()

    def test_huge_threshold_prunes_everything(self):
        rng = np.random.default_rng(1)
        kernels = rng.normal(size=(2, 2, 3, 3))
        pruned, mask = prune_kernels(kernels, 1e9)
        assert not mask.any()
        assert np.all(pruned == 0.0)

    def test_threshold_boundary_inclusive(self):
        kernels = np.array([0.5, -0.5, 0.49])
        _, mask = prune_kernels(kernels, 0.5)
        assert mask.tolist() == [True, True, False]

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            prune_kernels(np.ones(3), -0.1)


class TestSparseMappingReport:
    def test_counts_consistent(self):
        rng = np.random.default_rng(2)
        kernels = rng.normal(size=(8, 4, 3, 3))
        report = sparse_mapping_report(kernels, 0.5)
        assert report.total_weights == kernels.size
        assert report.active_rings + report.pruned_rings == report.total_weights
        assert 0.0 <= report.sparsity <= 1.0

    def test_energy_retained_decreases_with_threshold(self):
        rng = np.random.default_rng(3)
        kernels = rng.normal(size=(4, 4, 3, 3))
        low = sparse_mapping_report(kernels, 0.1)
        high = sparse_mapping_report(kernels, 1.0)
        assert high.energy_retained < low.energy_retained

    def test_savings_scale_with_pruned_rings(self):
        rng = np.random.default_rng(4)
        kernels = rng.normal(size=(4, 4, 3, 3))
        report = sparse_mapping_report(kernels, 0.7)
        assert report.rings_area_saved_mm2 == pytest.approx(
            report.pruned_rings * 625e-12 * 1e6
        )
        assert report.tuning_power_saved_w == pytest.approx(
            report.pruned_rings * 1e-3
        )

    def test_zero_tensor_retains_all_energy(self):
        report = sparse_mapping_report(np.zeros((2, 2, 3, 3)), 0.5)
        assert report.energy_retained == 1.0


class TestThresholdForSparsity:
    @given(sparsity=st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=30, deadline=None)
    def test_achieves_requested_sparsity(self, sparsity):
        rng = np.random.default_rng(5)
        kernels = rng.normal(size=2000)
        threshold = threshold_for_sparsity(kernels, sparsity)
        report = sparse_mapping_report(kernels, threshold)
        assert report.sparsity == pytest.approx(sparsity, abs=0.02)

    def test_zero_sparsity_zero_threshold(self):
        assert threshold_for_sparsity(np.ones(10), 0.0) == 0.0

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError):
            threshold_for_sparsity(np.ones(4), 1.0)
        with pytest.raises(ValueError):
            threshold_for_sparsity(np.ones(4), -0.1)


class TestPrunedConvError:
    def test_zero_threshold_zero_error(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 8, 8))
        k = rng.normal(size=(3, 2, 3, 3))
        assert pruned_conv_error(x, k, 0.0) == 0.0

    def test_error_grows_with_threshold(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(2, 8, 8))
        k = rng.normal(size=(3, 2, 3, 3))
        assert pruned_conv_error(x, k, 0.1) < pruned_conv_error(x, k, 1.0)

    def test_mild_pruning_mild_error(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(2, 8, 8))
        k = rng.normal(size=(3, 2, 3, 3))
        threshold = threshold_for_sparsity(k, 0.2)
        assert pruned_conv_error(x, k, threshold) < 0.2
