"""Tests for the laser bank and Mach-Zehnder modulator models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.laser import LaserBank, LaserSpec
from repro.photonics.modulator import MachZehnderModulator, ModulatorSpec
from repro.photonics.noise import NoiseConfig, ideal
from repro.photonics.wdm import WdmGrid


class TestLaserSpec:
    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            LaserSpec(power_w=0.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            LaserSpec(wall_plug_efficiency=0.0)
        with pytest.raises(ValueError):
            LaserSpec(wall_plug_efficiency=1.5)

    def test_electrical_power(self):
        spec = LaserSpec(power_w=1e-3, wall_plug_efficiency=0.1)
        assert spec.electrical_power_w == pytest.approx(10e-3)


class TestLaserBank:
    def test_ideal_emission_is_uniform_nominal(self):
        bank = LaserBank(WdmGrid(8), LaserSpec(power_w=2e-3))
        powers = bank.emit()
        assert powers.shape == (8,)
        assert np.allclose(powers, 2e-3)

    def test_emission_nonnegative_under_rin(self):
        noise = NoiseConfig(
            enabled=True, relative_intensity_noise_db_per_hz=-110.0, seed=1
        )
        bank = LaserBank(WdmGrid(64), noise=noise)
        for _ in range(10):
            assert np.all(bank.emit() >= 0.0)

    def test_rin_perturbs_power(self):
        noise = NoiseConfig(
            enabled=True, relative_intensity_noise_db_per_hz=-130.0, seed=2
        )
        bank = LaserBank(WdmGrid(16), noise=noise)
        powers = bank.emit()
        assert not np.allclose(powers, bank.spec.power_w)

    def test_rin_disabled_when_master_switch_off(self):
        noise = NoiseConfig(
            enabled=False, relative_intensity_noise_db_per_hz=-110.0
        )
        bank = LaserBank(WdmGrid(16), noise=noise)
        assert np.allclose(bank.emit(), bank.spec.power_w)

    def test_total_powers(self):
        bank = LaserBank(WdmGrid(10), LaserSpec(power_w=1e-3, wall_plug_efficiency=0.2))
        assert bank.total_optical_power_w() == pytest.approx(10e-3)
        assert bank.total_electrical_power_w() == pytest.approx(50e-3)

    def test_reproducible_with_seed(self):
        noise_a = NoiseConfig(
            enabled=True, relative_intensity_noise_db_per_hz=-120.0, seed=7
        )
        noise_b = NoiseConfig(
            enabled=True, relative_intensity_noise_db_per_hz=-120.0, seed=7
        )
        a = LaserBank(WdmGrid(8), noise=noise_a).emit()
        b = LaserBank(WdmGrid(8), noise=noise_b).emit()
        assert np.array_equal(a, b)


class TestModulatorSpec:
    def test_rejects_nonpositive_vpi(self):
        with pytest.raises(ValueError):
            ModulatorSpec(v_pi=0.0)

    def test_infinite_extinction_means_zero_floor(self):
        assert ModulatorSpec().min_transmission == 0.0

    def test_finite_extinction_floor(self):
        spec = ModulatorSpec(extinction_ratio_db=20.0)
        assert spec.min_transmission == pytest.approx(0.01)

    def test_insertion_loss_transmission(self):
        spec = ModulatorSpec(insertion_loss_db=3.0)
        assert spec.insertion_transmission == pytest.approx(0.501, rel=1e-2)

    def test_rejects_negative_insertion_loss(self):
        with pytest.raises(ValueError):
            ModulatorSpec(insertion_loss_db=-1.0)


class TestMachZehnderModulator:
    def test_raw_transfer_extremes(self):
        mzm = MachZehnderModulator(ModulatorSpec(v_pi=2.0))
        assert mzm.raw_transfer(0.0) == pytest.approx(1.0)
        assert mzm.raw_transfer(2.0) == pytest.approx(0.0, abs=1e-12)

    def test_raw_transfer_quadrature(self):
        mzm = MachZehnderModulator(ModulatorSpec(v_pi=2.0))
        assert mzm.raw_transfer(1.0) == pytest.approx(0.5)

    def test_ideal_encode_is_identity(self):
        mzm = MachZehnderModulator()
        values = np.linspace(0, 1, 11)
        assert np.allclose(mzm.encode(values), values)

    def test_encode_respects_extinction_floor(self):
        mzm = MachZehnderModulator(ModulatorSpec(extinction_ratio_db=10.0))
        encoded = mzm.encode(0.0)
        assert encoded[0] == pytest.approx(0.1)

    def test_encode_rejects_out_of_range(self):
        mzm = MachZehnderModulator()
        with pytest.raises(ValueError):
            mzm.encode(np.array([0.5, 1.2]))
        with pytest.raises(ValueError):
            mzm.encode(-0.3)

    def test_encode_tolerates_float_fuzz(self):
        mzm = MachZehnderModulator()
        encoded = mzm.encode(np.array([1.0 + 1e-14, -1e-14]))
        assert encoded[0] == pytest.approx(1.0)
        assert encoded[1] == pytest.approx(0.0, abs=1e-12)

    @given(value=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_drive_voltage_inverts_raw_transfer(self, value):
        mzm = MachZehnderModulator(ModulatorSpec(v_pi=2.0))
        voltage = mzm.drive_voltage_for(value)
        assert float(mzm.raw_transfer(voltage)) == pytest.approx(value, abs=1e-9)

    def test_drive_voltage_rejects_out_of_range(self):
        mzm = MachZehnderModulator()
        with pytest.raises(ValueError):
            mzm.drive_voltage_for(1.5)

    def test_encode_monotonic(self):
        mzm = MachZehnderModulator(ModulatorSpec(extinction_ratio_db=15.0))
        values = np.linspace(0, 1, 21)
        encoded = mzm.encode(values)
        assert np.all(np.diff(encoded) > 0)
