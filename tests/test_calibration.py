"""Tests for closed-loop weight-bank calibration."""

import numpy as np
import pytest

from repro.photonics.calibration import calibrate_bank, measure_effective_weights
from repro.photonics.microring import MicroringDesign
from repro.photonics.noise import NoiseConfig, ideal
from repro.photonics.wdm import WdmGrid
from repro.photonics.weight_bank import WeightBank


def crosstalk_bank(num_rings=8, quality_factor=20_000) -> WeightBank:
    noise = NoiseConfig(
        enabled=True, shot_noise=False, thermal_noise=False, crosstalk=True, seed=0
    )
    return WeightBank(
        WdmGrid(num_rings), MicroringDesign(quality_factor=quality_factor), noise
    )


class TestMeasurement:
    def test_ideal_bank_measures_programmed(self):
        bank = WeightBank(WdmGrid(4), noise=ideal())
        weights = np.array([0.3, -0.5, 0.0, 1.0])
        bank.set_weights(weights)
        assert np.allclose(measure_effective_weights(bank), weights, atol=1e-12)

    def test_crosstalk_bank_measures_deviation(self):
        bank = crosstalk_bank(quality_factor=5_000)
        weights = np.full(8, 0.5)
        bank.set_weights(weights)
        measured = measure_effective_weights(bank)
        assert not np.allclose(measured, weights, atol=1e-3)


class TestCalibration:
    def test_converges_with_moderate_crosstalk(self):
        bank = crosstalk_bank(quality_factor=20_000)
        rng = np.random.default_rng(1)
        target = rng.uniform(-0.7, 0.7, 8)
        result = calibrate_bank(bank, target)
        assert result.converged
        assert result.residual < 1e-6
        assert result.improvement > 1_000

    def test_open_loop_error_recorded(self):
        bank = crosstalk_bank(quality_factor=10_000)
        target = np.full(8, 0.4)
        result = calibrate_bank(bank, target)
        assert result.initial_residual > result.residual

    def test_ideal_bank_needs_no_iterations(self):
        bank = WeightBank(WdmGrid(6), noise=ideal())
        target = np.linspace(-0.9, 0.9, 6)
        result = calibrate_bank(bank, target)
        assert result.converged
        assert result.iterations == 0

    def test_severe_crosstalk_fails_gracefully(self):
        # Q = 5000 on a 100 GHz grid: the crosstalk floor exceeds the
        # correctable range (commands clip at +-1), so calibration cannot
        # converge — a real design constraint, reported not raised.
        bank = crosstalk_bank(quality_factor=5_000)
        rng = np.random.default_rng(0)
        target = rng.uniform(-0.7, 0.7, 8)
        result = calibrate_bank(bank, target, max_iterations=30)
        assert not result.converged
        assert result.residual > 1e-2

    def test_commanded_weights_stay_in_range(self):
        bank = crosstalk_bank(quality_factor=10_000)
        target = np.full(8, 0.95)  # Near the rail.
        result = calibrate_bank(bank, target, max_iterations=30)
        assert np.all(np.abs(result.commanded) <= 1.0)

    def test_lower_gain_converges_slower(self):
        rng = np.random.default_rng(3)
        target = rng.uniform(-0.6, 0.6, 8)
        fast = calibrate_bank(crosstalk_bank(), target, gain=1.0, max_iterations=80)
        slow = calibrate_bank(crosstalk_bank(), target, gain=0.3, max_iterations=80)
        assert fast.converged and slow.converged
        assert slow.iterations >= fast.iterations

    def test_rejects_bad_inputs(self):
        bank = crosstalk_bank()
        with pytest.raises(ValueError):
            calibrate_bank(bank, np.zeros(5))
        with pytest.raises(ValueError):
            calibrate_bank(bank, np.full(8, 1.5))
        with pytest.raises(ValueError):
            calibrate_bank(bank, np.zeros(8), gain=0.0)
