"""Tests for the functional NN operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestConv2d:
    def test_identity_kernel(self):
        x = np.arange(9.0).reshape(1, 3, 3)
        k = np.zeros((1, 1, 1, 1))
        k[0, 0, 0, 0] = 1.0
        assert np.allclose(F.conv2d(x, k), x)

    def test_averaging_kernel(self):
        x = np.ones((1, 4, 4))
        k = np.full((1, 1, 2, 2), 0.25)
        out = F.conv2d(x, k)
        assert out.shape == (1, 3, 3)
        assert np.allclose(out, 1.0)

    def test_multi_channel_sums(self):
        x = np.ones((3, 2, 2))
        k = np.ones((1, 3, 2, 2))
        assert F.conv2d(x, k)[0, 0, 0] == pytest.approx(12.0)

    def test_bias(self):
        x = np.zeros((1, 3, 3))
        k = np.zeros((2, 1, 3, 3))
        out = F.conv2d(x, k, bias=np.array([1.5, -2.0]))
        assert np.allclose(out[0], 1.5)
        assert np.allclose(out[1], -2.0)

    def test_bias_shape_check(self):
        with pytest.raises(ValueError):
            F.conv2d(np.zeros((1, 3, 3)), np.zeros((2, 1, 2, 2)), bias=np.zeros(3))

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            F.conv2d(np.zeros((3, 3)), np.zeros((1, 1, 2, 2)))
        with pytest.raises(ValueError):
            F.conv2d(np.zeros((1, 3, 3)), np.zeros((1, 2, 2, 2)))
        with pytest.raises(ValueError):
            F.conv2d(np.zeros((1, 3, 3)), np.zeros((1, 1, 2, 3)))

    @given(
        channels=st.integers(min_value=1, max_value=3),
        side=st.integers(min_value=3, max_value=9),
        kernels=st.integers(min_value=1, max_value=4),
        kernel_size=st.integers(min_value=1, max_value=3),
        stride=st.integers(min_value=1, max_value=2),
        padding=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_im2col_matches_direct(
        self, channels, side, kernels, kernel_size, stride, padding, seed
    ):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(channels, side, side))
        k = rng.normal(size=(kernels, channels, kernel_size, kernel_size))
        fast = F.conv2d(x, k, stride, padding)
        slow = F.conv2d_direct(x, k, stride, padding)
        assert np.allclose(fast, slow, atol=1e-10)

    def test_linearity_in_input(self):
        rng = np.random.default_rng(3)
        x1 = rng.normal(size=(2, 5, 5))
        x2 = rng.normal(size=(2, 5, 5))
        k = rng.normal(size=(3, 2, 3, 3))
        combined = F.conv2d(2.0 * x1 + x2, k)
        separate = 2.0 * F.conv2d(x1, k) + F.conv2d(x2, k)
        assert np.allclose(combined, separate)


class TestActivations:
    def test_relu_clamps_negative(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert F.relu(x).tolist() == [0.0, 0.0, 2.0]

    def test_relu_preserves_shape(self):
        assert F.relu(np.ones((2, 3, 4))).shape == (2, 3, 4)

    def test_softmax_sums_to_one(self):
        probs = F.softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)

    def test_softmax_stable_for_large_inputs(self):
        probs = F.softmax(np.array([1000.0, 1000.0]))
        assert np.allclose(probs, 0.5)

    def test_softmax_monotonic(self):
        probs = F.softmax(np.array([1.0, 2.0, 3.0]))
        assert probs[0] < probs[1] < probs[2]


class TestPooling:
    def test_max_pool_basic(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        out = F.max_pool2d(x, 2)
        assert out.shape == (1, 2, 2)
        assert out[0].tolist() == [[5.0, 7.0], [13.0, 15.0]]

    def test_overlapping_pool(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        out = F.max_pool2d(x, 3, stride=1)
        assert out.shape == (1, 2, 2)
        assert out[0, 0, 0] == 10.0

    def test_pool_shape_checks(self):
        with pytest.raises(ValueError):
            F.max_pool2d(np.ones((4, 4)), 2)
        with pytest.raises(ValueError):
            F.max_pool2d(np.ones((1, 2, 2)), 0)
        with pytest.raises(ValueError):
            F.max_pool2d(np.ones((1, 2, 2)), 3)

    def test_pool_never_increases_max(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(3, 8, 8))
        assert F.max_pool2d(x, 2).max() <= x.max()


class TestLrnAndLinear:
    def test_lrn_preserves_shape_and_sign(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(8, 4, 4))
        out = F.local_response_norm(x)
        assert out.shape == x.shape
        assert np.all(np.sign(out) == np.sign(x))

    def test_lrn_shrinks_magnitude(self):
        x = np.full((8, 2, 2), 3.0)
        out = F.local_response_norm(x)
        assert np.all(np.abs(out) < np.abs(x))

    def test_lrn_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            F.local_response_norm(np.ones((3, 3)))

    def test_linear_matches_matmul(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=10)
        W = rng.normal(size=(4, 10))
        b = rng.normal(size=4)
        assert np.allclose(F.linear(x, W, b), W @ x + b)

    def test_linear_shape_checks(self):
        with pytest.raises(ValueError):
            F.linear(np.ones((2, 2)), np.ones((2, 4)))
        with pytest.raises(ValueError):
            F.linear(np.ones(3), np.ones((2, 4)))
        with pytest.raises(ValueError):
            F.linear(np.ones(4), np.ones((2, 4)), bias=np.ones(3))
