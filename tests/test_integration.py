"""Integration tests: the paper's headline claims, end to end.

These tests exercise multiple subsystems together and assert the
*conclusions* of the paper hold in the reproduction:

* the optical core is >= 5 orders of magnitude faster than Eyeriss on
  the deepest AlexNet layers;
* the full system (with electronic IO limits) is >= 3 orders faster;
* receptive-field filtering saves > 150 000x rings on conv1;
* a complete CNN inference through the photonic engine matches the
  electronic reference.
"""

import math

import numpy as np
import pytest

from repro.baselines import EyerissModel, YodaNNModel, published_layer_time_s
from repro.core import (
    PCNNA,
    analyze_network,
    full_system_time_s,
    optical_core_time_s,
    ring_savings_factor,
    speedup,
)
from repro.core.config import paper_assumptions
from repro.core.timing import simulate_network
from repro.nn import build_lenet5
from repro.workloads import alexnet_conv_specs, alexnet_layer


class TestHeadlineClaims:
    def test_optical_core_five_orders_vs_eyeriss(self):
        """Paper: 'speedups of up to 5 orders of magnitude' (optical)."""
        best = max(
            speedup(
                published_layer_time_s(spec.name), optical_core_time_s(spec)
            )
            for spec in alexnet_conv_specs()
        )
        assert best >= 1e5

    def test_full_system_three_orders_vs_eyeriss(self):
        """Paper: 'more than 3 orders of magnitude' (full system)."""
        best = max(
            speedup(
                published_layer_time_s(spec.name), full_system_time_s(spec)
            )
            for spec in alexnet_conv_specs()
        )
        assert best >= 1e3

    def test_every_layer_beats_eyeriss_by_two_orders(self):
        for spec in alexnet_conv_specs():
            ratio = speedup(
                published_layer_time_s(spec.name), full_system_time_s(spec)
            )
            assert ratio >= 1e2, spec.name

    def test_full_system_beats_yodann(self):
        yodann = YodaNNModel()
        for spec in alexnet_conv_specs():
            assert full_system_time_s(spec) < yodann.layer_time_s(spec), spec.name

    def test_yodann_sits_between_eyeriss_and_pcnna(self):
        yodann = YodaNNModel()
        for spec in alexnet_conv_specs():
            assert (
                full_system_time_s(spec)
                < yodann.layer_time_s(spec)
                < published_layer_time_s(spec.name)
            )

    def test_conv1_filtering_saves_150k(self):
        assert ring_savings_factor(alexnet_layer("conv1")) > 150_000

    def test_fig6_ordering_holds_under_cycle_simulation(self):
        """The Fig. 6 ordering must hold for the simulator too, not just
        the closed forms (under the paper's memory assumptions)."""
        results = simulate_network(
            alexnet_conv_specs(), paper_assumptions(), include_adc=False
        )
        eyeriss = EyerissModel()
        for result in results:
            assert result.pipelined_time_s < eyeriss.layer_time_s(result.spec)
            orders = math.log10(
                eyeriss.layer_time_s(result.spec) / result.pipelined_time_s
            )
            assert orders >= 2.5, result.name


class TestEndToEndInference:
    def test_lenet_photonic_equals_electronic(self):
        net = build_lenet5(seed=0)
        accelerator = PCNNA()
        x = np.random.default_rng(0).normal(size=(1, 32, 32))
        photonic = accelerator.run_network(net, x)
        electronic = net.forward(x)
        assert np.allclose(photonic, electronic, atol=1e-9)
        assert photonic.sum() == pytest.approx(1.0)

    def test_lenet_classification_stable_under_mild_noise(self):
        from repro.core.config import PCNNAConfig
        from repro.photonics.noise import NoiseConfig

        net = build_lenet5(seed=1)
        x = np.random.default_rng(1).normal(size=(1, 32, 32))
        clean_class = int(np.argmax(net.forward(x)))

        config = PCNNAConfig(
            noise=NoiseConfig(enabled=True, ring_tuning_sigma=1e-4, seed=2)
        )
        noisy = PCNNA(config).run_network(net, x)
        assert int(np.argmax(noisy)) == clean_class

    def test_scaled_alexnet_conv_stack_photonic(self):
        from repro.nn import build_alexnet

        net = build_alexnet(scale=0.03, include_classifier=False, seed=3)
        accelerator = PCNNA()
        x = np.random.default_rng(3).normal(size=(3, 224, 224)).astype(np.float32)
        photonic = accelerator.run_network(net, x)
        electronic = net.forward(x)
        scale = np.max(np.abs(electronic)) or 1.0
        assert np.max(np.abs(photonic - electronic)) / scale < 1e-6


class TestAnalysisPipeline:
    def test_network_analysis_and_simulation_consistent(self):
        specs = alexnet_conv_specs()
        analyses = analyze_network(specs)
        results = simulate_network(specs, paper_assumptions(), include_adc=False)
        for analysis, result in zip(analyses, results):
            assert analysis.name == result.name
            assert result.pipelined_time_s == pytest.approx(
                analysis.full_system_time_s, rel=0.25
            )

    def test_total_alexnet_conv_latency_microseconds(self):
        # The whole conv stack completes in ~21 us (DAC-bound model) —
        # versus Eyeriss's ~28.8 ms: three orders of magnitude.
        total = sum(full_system_time_s(spec) for spec in alexnet_conv_specs())
        assert 10e-6 < total < 50e-6
