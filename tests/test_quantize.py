"""Tests for fixed-point tensor quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import build_lenet5
from repro.nn.quantize import (
    quantization_error,
    quantize_network_weights,
    quantize_tensor,
)


class TestQuantizeTensor:
    def test_zero_exact(self):
        quantized = quantize_tensor(np.zeros(10), bits=8)
        assert np.all(quantized.codes == 0)
        assert np.allclose(quantized.dequantize(), 0.0)

    def test_peak_maps_to_top_code(self):
        values = np.array([-2.0, 0.5, 2.0])
        quantized = quantize_tensor(values, bits=8)
        assert quantized.codes.max() == quantized.max_code

    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        quantized = quantize_tensor(values, bits=12)
        error = np.abs(quantized.dequantize() - values)
        assert np.max(error) <= quantized.scale / 2 + 1e-12

    def test_rejects_too_few_bits(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(4), bits=1)

    @given(
        values=arrays(
            float,
            32,
            elements=st.floats(
                min_value=-100.0, max_value=100.0, width=64,
                allow_nan=False, allow_infinity=False,
            ),
        ),
        bits=st.integers(min_value=4, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_error_within_half_step(self, values, bits):
        quantized = quantize_tensor(values, bits)
        error = np.abs(quantized.dequantize() - values)
        assert np.max(error) <= quantized.scale / 2 + 1e-9

    def test_symmetric_negation(self):
        values = np.array([-1.0, -0.5, 0.5, 1.0])
        positive = quantize_tensor(values, bits=8).dequantize()
        negative = quantize_tensor(-values, bits=8).dequantize()
        assert np.allclose(positive, -negative)


class TestQuantizationError:
    def test_more_bits_less_error(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=500)
        assert quantization_error(values, 16) < quantization_error(values, 8)

    def test_sixteen_bits_tiny(self):
        rng = np.random.default_rng(2)
        assert quantization_error(rng.normal(size=500), 16) < 1e-4

    def test_zero_tensor(self):
        assert quantization_error(np.zeros(8)) == 0.0


class TestQuantizeNetwork:
    def test_network_still_runs_and_agrees(self):
        net = build_lenet5(seed=3)
        x = np.random.default_rng(3).normal(size=(1, 32, 32))
        reference = net.forward(x)
        worst = quantize_network_weights(net, bits=16)
        quantized_out = net.forward(x)
        assert worst < 1e-4
        assert np.allclose(quantized_out, reference, atol=1e-3)
        assert int(np.argmax(quantized_out)) == int(np.argmax(reference))

    def test_aggressive_quantization_measurable(self):
        net = build_lenet5(seed=4)
        worst = quantize_network_weights(net, bits=4)
        assert worst > 1e-3
