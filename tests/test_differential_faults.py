"""Differential tests for the fault-injection scenario engine.

The engine's load-bearing guarantees are differential, pinned here:

* a **zero-magnitude** fault schedule (same events, zero physical
  effect) is *bit-identical* to the fault-free ``ServingSimulator`` —
  every dispatch, completion, batch record, and busy time, and the
  engine replay of the schedule's batches;
* **monotone drift monotonically worsens** the measured accuracy proxy,
  both across drift rates (faster ambient ramp, strictly larger error)
  and along one run (the proxy trajectory of an un-recalibrated ramp
  never improves);
* **recalibration strictly helps**: the same drift sweep with the
  closed calibration loop enabled shows a strictly better accuracy
  proxy than without, and the recalibration downtime is visible in the
  per-core availability / utilization accounting.
"""

import numpy as np
import pytest

from repro.analysis import sweep_fault_tolerance
from repro.core.faults import (
    CoreHealthState,
    DegradedServingSimulator,
    FaultEvent,
    FaultSchedule,
    RecalibrationPolicy,
    replay_on_engine_degraded,
    simulate_degraded_serving,
)
from repro.core.traffic import (
    BatchingPolicy,
    PipelineServiceModel,
    ServingSimulator,
    replay_on_engine,
    simulate_serving,
)
from repro.workloads import (
    alexnet_conv_specs,
    fault_scenario,
    poisson_arrivals,
    serving_batch,
    serving_network,
)


def mixed_schedule(num_cores: int, horizon_s: float) -> FaultSchedule:
    """A schedule exercising every fault kind across the cores."""
    return FaultSchedule(
        name="mixed",
        events=(
            FaultEvent("thermal_ramp", 0, 0.1 * horizon_s, 0.3 / horizon_s),
            FaultEvent(
                "crosstalk",
                1 % num_cores,
                0.2 * horizon_s,
                0.2,
                duration_s=0.3 * horizon_s,
            ),
            FaultEvent(
                "dead_rings",
                (num_cores - 1),
                0.5 * horizon_s,
                1.0,
                rings=(7, 6),
            ),
            FaultEvent(
                "stuck_rings", 0, 0.3 * horizon_s, 1.0, rings=(5,)
            ),
            FaultEvent(
                "tia_droop",
                1 % num_cores,
                0.1 * horizon_s,
                0.2,
                duration_s=0.5 * horizon_s,
            ),
        ),
    )


class TestZeroMagnitudeBitIdentity:
    """scaled(0) must be indistinguishable from no schedule at all."""

    def test_simulator_bit_identical_to_fault_free(self):
        specs = alexnet_conv_specs()
        model = PipelineServiceModel.from_specs(specs, 3)
        policy = BatchingPolicy.dynamic(8, 1e-3)
        arrivals = poisson_arrivals(5000.0, 1500, seed=11)
        horizon = float(arrivals[-1])

        base = ServingSimulator(model, policy).run(arrivals)
        zero = DegradedServingSimulator(
            model,
            policy,
            mixed_schedule(3, horizon).scaled(0.0),
            recalibration=RecalibrationPolicy(),
            specs=specs,
        ).run(arrivals)

        assert np.array_equal(base.arrival_s, zero.arrival_s)
        assert np.array_equal(base.dispatch_s, zero.dispatch_s)
        assert np.array_equal(base.completion_s, zero.completion_s)
        assert base.batches == zero.batches
        assert base.core_busy_s == zero.core_busy_s
        assert base.p50_s == zero.p50_s
        assert base.p99_s == zero.p99_s
        # And the degradation side reports a perfectly healthy run.
        assert zero.accuracy_proxy.max() < 1e-5
        assert zero.recalibrations == ()
        assert zero.repartitions == ()
        assert zero.core_downtime_s == (0.0, 0.0, 0.0)
        assert all(a == 1.0 for a in zero.availability)
        assert np.all(zero.batch_num_cores == 3)

    def test_engine_replay_bit_identical_to_fault_free(self):
        network = serving_network("lenet5")
        requests = 10
        inputs = serving_batch(network, requests, seed=9)
        arrivals = poisson_arrivals(3e4, requests, seed=8)
        policy = BatchingPolicy.dynamic(4, 1e-4)
        horizon = float(arrivals[-1])

        base = simulate_serving(network, arrivals, policy, num_cores=2)
        zero = simulate_degraded_serving(
            network,
            arrivals,
            policy,
            mixed_schedule(2, horizon).scaled(0.0),
            num_cores=2,
            recalibration=RecalibrationPolicy(),
        )
        assert base.batches == zero.batches

        base_outputs = replay_on_engine(network, base, inputs)
        degraded = replay_on_engine_degraded(network, zero, inputs)
        assert np.array_equal(degraded.outputs, base_outputs)
        assert np.array_equal(degraded.reference_outputs, base_outputs)
        assert degraded.max_divergence == 0.0

    def test_zero_scaling_is_exact_for_every_kind(self):
        """Every event survives scaling (same kinds, cores, onsets) with
        exactly zero magnitude — the schedule stays structurally rich."""
        schedule = mixed_schedule(3, 1.0)
        zero = schedule.scaled(0.0)
        assert len(zero.events) == len(schedule.events)
        for original, scaled in zip(schedule.events, zero.events):
            assert scaled.kind == original.kind
            assert scaled.core == original.core
            assert scaled.onset_s == original.onset_s
            assert scaled.magnitude == 0.0
            assert scaled.affected_rings == ()


class TestMonotoneDriftWorsensAccuracy:
    @staticmethod
    def _run(rate: float, arrivals: np.ndarray):
        network = serving_network("lenet5")
        return simulate_degraded_serving(
            network,
            arrivals,
            BatchingPolicy.dynamic(4, 1e-4),
            FaultSchedule.uniform_drift(rate, 2),
            num_cores=2,
            recalibration=None,
            repartition=False,
        )

    def test_faster_drift_strictly_worse_proxy(self):
        arrivals = poisson_arrivals(3e4, 12, seed=8)
        horizon = float(arrivals[-1])
        rates = [0.0, 0.05 / horizon, 0.2 / horizon, 1.0 / horizon]
        proxies = [self._run(rate, arrivals).mean_accuracy_proxy for rate in rates]
        for slower, faster in zip(proxies, proxies[1:]):
            assert faster > slower

    def test_proxy_trajectory_never_improves_without_recalibration(self):
        arrivals = poisson_arrivals(3e4, 20, seed=4)
        horizon = float(arrivals[-1])
        report = self._run(0.5 / horizon, arrivals)
        trajectory = report.accuracy_proxy
        assert np.all(np.diff(trajectory) >= 0.0)
        assert trajectory[-1] > trajectory[0]

    def test_replay_divergence_grows_with_drift(self):
        network = serving_network("lenet5")
        inputs = serving_batch(network, 12, seed=5)
        arrivals = poisson_arrivals(3e4, 12, seed=8)
        horizon = float(arrivals[-1])
        divergences = []
        # Rates inside the responsive regime: LeNet's softmax output
        # bounds the divergence, which saturates near 0.25 beyond this.
        for rate in [0.0, 0.005 / horizon, 0.02 / horizon]:
            report = self._run(rate, arrivals)
            replay = replay_on_engine_degraded(network, report, inputs)
            divergences.append(replay.max_divergence)
        assert divergences[0] == 0.0
        assert divergences[1] > 0.0
        assert divergences[2] > divergences[1]


class TestRecalibrationStrictlyHelps:
    def test_sweep_with_recalibration_beats_without(self):
        """The acceptance sweep: at every drift rate, recalibration gives
        a strictly better accuracy proxy, and its downtime is visible in
        per-core availability (and only there — the no-recal column pays
        none)."""
        specs = alexnet_conv_specs()
        arrivals = poisson_arrivals(6000.0, 1200, seed=3)
        horizon = float(arrivals[-1])
        rates = [0.1 / horizon, 0.3 / horizon]
        points = sweep_fault_tolerance(
            specs,
            BatchingPolicy.dynamic(8, 1e-3),
            rates,
            [None, RecalibrationPolicy()],
            arrivals,
            num_cores=3,
        )
        assert len(points) == 4
        by_cell = {
            (point.drift_rate_k_per_s, point.recalibration): point
            for point in points
        }
        for rate in rates:
            none = by_cell[(rate, "none")]
            recal = by_cell[(rate, "recal")]
            assert recal.mean_accuracy_proxy < none.mean_accuracy_proxy
            assert recal.report.final_accuracy_proxy < (
                none.report.final_accuracy_proxy
            )
            # Downtime is real and visible: availability dips below 1
            # exactly when recalibrations happened.
            assert len(recal.report.recalibrations) > 0
            assert recal.min_availability < 1.0
            assert all(d > 0.0 for d in recal.report.core_downtime_s)
            assert none.report.recalibrations == ()
            assert all(a == 1.0 for a in none.report.availability)

    def test_recalibration_downtime_shifts_completions(self):
        """Downtime rides the shared clock: the recalibrating run's
        completions lag the no-recalibration run's."""
        network = serving_network("lenet5")
        arrivals = poisson_arrivals(3e4, 20, seed=4)
        horizon = float(arrivals[-1])
        schedule = FaultSchedule.uniform_drift(0.3 / horizon, 2)
        args = (network, arrivals, BatchingPolicy.dynamic(4, 1e-4), schedule)
        none = simulate_degraded_serving(
            *args, num_cores=2, recalibration=None, repartition=False
        )
        recal = simulate_degraded_serving(
            *args,
            num_cores=2,
            recalibration=RecalibrationPolicy(),
            repartition=False,
        )
        assert len(recal.recalibrations) > 0
        assert np.all(recal.completion_s >= none.completion_s)
        assert recal.completion_s.max() > none.completion_s.max()


class TestRecalibrationCompensatesReplay:
    def test_tia_droop_compensation_reaches_the_replay(self):
        """Regression: a successful recalibration absorbs TIA droop via
        the command boost, so the degraded replay must apply only the
        *residual* gain — a batch whose proxy recalibration restored to
        ~0 used to still diverge by the full raw droop."""
        network = serving_network("lenet5")
        inputs = serving_batch(network, 12, seed=3)
        arrivals = poisson_arrivals(2e4, 12, seed=1)
        horizon = float(arrivals[-1])
        schedule = fault_scenario("tia-aging", 2, horizon)
        args = (network, arrivals, BatchingPolicy.dynamic(4, 1e-4), schedule)
        recal = simulate_degraded_serving(
            *args,
            num_cores=2,
            recalibration=RecalibrationPolicy(),
            repartition=False,
        )
        none = simulate_degraded_serving(
            *args, num_cores=2, recalibration=None, repartition=False
        )
        recal_replay = replay_on_engine_degraded(network, recal, inputs)
        none_replay = replay_on_engine_degraded(network, none, inputs)
        # Restored batches replay clean: divergence 0 where proxy ~ 0.
        restored = recal.accuracy_proxy < 1e-6
        assert restored.any()
        assert np.all(recal_replay.divergence_per_batch[restored] == 0.0)
        # And overall the recalibrated run diverges strictly less.
        assert recal_replay.max_divergence < none_replay.max_divergence


class TestFaultAwareRepartitioning:
    def test_dead_core_is_drained_and_pipeline_narrows(self):
        specs = alexnet_conv_specs()
        model = PipelineServiceModel.from_specs(specs, 3)
        policy = BatchingPolicy.dynamic(8, 1e-3)
        arrivals = poisson_arrivals(5000.0, 800, seed=6)
        horizon = float(arrivals[-1])
        schedule = fault_scenario("ring-death", 3, horizon)
        report = DegradedServingSimulator(
            model,
            policy,
            schedule,
            recalibration=RecalibrationPolicy(),
            specs=specs,
        ).run(arrivals)
        assert len(report.repartitions) == 1
        event = report.repartitions[0]
        assert event.failed_cores == (2,)
        assert event.num_cores_after == 2
        # The pipeline narrows mid-run and stays narrow.
        assert report.batch_num_cores[0] == 3
        assert report.batch_num_cores[-1] == 2
        assert np.all(np.diff(report.batch_num_cores) <= 0)
        # After the drain the proxy recovers (dead core excluded).
        assert report.accuracy_proxy[-1] < 1e-5
        # Requests are conserved through the repartition.
        assert sum(batch.size for batch in report.batches) == 800

    def test_drained_core_error_reports_end_of_run_state(self):
        """A drained core's hardware keeps degrading on the schedule;
        final_core_errors must report the end-of-run error, not the
        drain-time snapshot."""
        specs = alexnet_conv_specs()
        model = PipelineServiceModel.from_specs(specs, 2)
        arrivals = poisson_arrivals(5000.0, 600, seed=6)
        horizon = float(arrivals[-1])
        # Core 1 dies early AND keeps drifting after it is drained.
        schedule = FaultSchedule(
            "death+ramp",
            (
                FaultEvent(
                    "dead_rings", 1, 0.1 * horizon, 1.0, rings=(7,)
                ),
                FaultEvent("thermal_ramp", 1, 0.1 * horizon, 2.0 / horizon),
            ),
        )
        report = DegradedServingSimulator(
            model,
            BatchingPolicy.dynamic(8, 1e-3),
            schedule,
            specs=specs,
        ).run(arrivals)
        assert len(report.repartitions) == 1
        drain_time = report.repartitions[0].time_s
        final_time = report.batches[-1].dispatch_s
        assert final_time > drain_time
        # Recompute both instants on a fresh state machine: the report
        # must carry the end-of-run error, not the drain-time snapshot.
        probe = CoreHealthState(1, schedule)
        probe.advance_to(drain_time)
        drain_error = probe.error
        probe.advance_to(final_time)
        assert report.final_core_errors[1] == probe.error
        assert report.final_core_errors[1] != drain_error

    def test_repartition_disabled_serves_degraded(self):
        specs = alexnet_conv_specs()
        model = PipelineServiceModel.from_specs(specs, 3)
        arrivals = poisson_arrivals(5000.0, 400, seed=6)
        horizon = float(arrivals[-1])
        schedule = fault_scenario("ring-death", 3, horizon)
        report = DegradedServingSimulator(
            model,
            BatchingPolicy.dynamic(8, 1e-3),
            schedule,
            recalibration=None,
            specs=None,
        ).run(arrivals)
        assert report.repartitions == ()
        assert np.all(report.batch_num_cores == 3)
        # The dead rings stay in the serving pipeline: proxy ends high.
        assert report.final_accuracy_proxy > 1.0


class TestDegradedReplayValidation:
    def test_replay_validates_inputs(self):
        network = serving_network("lenet5")
        arrivals = poisson_arrivals(1e4, 4, seed=0)
        report = simulate_degraded_serving(
            network,
            arrivals,
            BatchingPolicy.fifo(),
            FaultSchedule.none(),
            num_cores=1,
        )
        with pytest.raises(ValueError, match="one input per"):
            replay_on_engine_degraded(
                network, report, np.zeros((3, *network.input_shape))
            )
