"""Tests for the batching model and the layer-sequencing controller."""

import pytest

from repro.core.batching import (
    layer_batch_time_s,
    network_batch_timing,
    weight_stationary_crossover,
)
from repro.core.controller import LayerController, Phase
from repro.nn.shapes import ConvLayerSpec
from repro.workloads import alexnet_conv_specs, alexnet_layer


class TestBatching:
    def test_layer_batch_time_composition(self):
        from repro.core.analytical import full_system_time_s, weight_load_time_s

        spec = alexnet_layer("conv3")
        time_s = layer_batch_time_s(spec, 10)
        assert time_s == pytest.approx(
            weight_load_time_s(spec) + 10 * full_system_time_s(spec)
        )

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            layer_batch_time_s(alexnet_layer("conv1"), 0)
        with pytest.raises(ValueError):
            network_batch_timing(alexnet_conv_specs(), -1)

    def test_throughput_improves_with_batch(self):
        specs = alexnet_conv_specs()
        small = network_batch_timing(specs, 1)
        large = network_batch_timing(specs, 256)
        assert large.images_per_s > small.images_per_s

    def test_weight_load_fraction_shrinks(self):
        specs = alexnet_conv_specs()
        assert (
            network_batch_timing(specs, 128).weight_load_fraction
            < network_batch_timing(specs, 1).weight_load_fraction
        )

    def test_batch_of_one_is_load_dominated(self):
        # The extension finding: single-image AlexNet is weight-bound.
        timing = network_batch_timing(alexnet_conv_specs(), 1)
        assert timing.weight_load_fraction > 0.9

    def test_crossover_batch(self):
        specs = alexnet_conv_specs()
        crossover = weight_stationary_crossover(specs)
        below = network_batch_timing(specs, max(crossover - 1, 1))
        above = network_batch_timing(specs, crossover)
        assert below.weight_load_s >= below.conv_time_s or crossover == 1
        assert above.conv_time_s >= above.weight_load_s

    def test_per_image_latency_approaches_conv_time(self):
        from repro.core.analytical import full_system_time_s

        specs = alexnet_conv_specs()
        conv_only = sum(full_system_time_s(spec) for spec in specs)
        amortized = network_batch_timing(specs, 10_000).per_image_s
        assert amortized == pytest.approx(conv_only, rel=0.01)


class TestController:
    def small_spec(self) -> ConvLayerSpec:
        return ConvLayerSpec("small", n=8, m=3, nc=2, num_kernels=4)

    def test_every_location_executed_once(self):
        spec = self.small_spec()
        report = LayerController().run_layer(spec)
        assert report.locations_executed == spec.n_locs
        waves = report.events_in_phase(Phase.STREAM_LOCATIONS)
        assert sorted(event.detail for event in waves) == list(range(spec.n_locs))

    def test_all_outputs_written(self):
        spec = self.small_spec()
        report = LayerController().run_layer(spec)
        assert report.outputs_written == spec.n_output

    def test_weights_loaded_before_streaming(self):
        report = LayerController().run_layer(self.small_spec())
        phases = [event.phase for event in report.events]
        first_stream = phases.index(Phase.STREAM_LOCATIONS)
        assert Phase.LOAD_WEIGHTS in phases[:first_stream]
        assert Phase.PROGRAM_BANKS in phases[:first_stream]

    def test_trace_timestamps_monotone(self):
        report = LayerController().run_layer(self.small_spec())
        times = [event.time_s for event in report.events]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_finish_time_positive(self):
        report = LayerController().run_layer(self.small_spec())
        assert report.finish_time_s > 0
        assert report.events[-1].phase == Phase.DONE

    def test_small_output_buffer_forces_flushes(self):
        spec = self.small_spec()
        controller = LayerController(output_buffer_capacity=8)
        report = controller.run_layer(spec)
        flushes = report.events_in_phase(Phase.DRAIN_OUTPUTS)
        assert len(flushes) > 1
        assert report.outputs_written == spec.n_output

    def test_kernel_cap_respected(self):
        from repro.core.config import PCNNAConfig

        spec = self.small_spec()
        controller = LayerController(PCNNAConfig(max_parallel_kernels=2))
        report = controller.run_layer(spec)
        # 2 of 4 kernels per wave -> half the outputs per pass.
        assert report.outputs_written == spec.n_locs * 2

    def test_alexnet_conv5_runs(self):
        report = LayerController().run_layer(alexnet_layer("conv5"))
        assert report.locations_executed == 169
        assert report.finish_time_s > 0
