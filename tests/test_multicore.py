"""Tests for the inter-layer pipeline (multi-core) model."""

import pytest

from repro.core.analytical import full_system_time_s
from repro.core.multicore import (
    balanced_partition,
    contiguous_partition,
    layer_times,
    pipeline_speedup,
)
from repro.workloads import alexnet_conv_specs


class TestContiguousPartition:
    def test_explicit_split(self):
        specs = alexnet_conv_specs()
        partition = contiguous_partition(specs, [2, 4])
        assert partition.num_cores == 3
        assert partition.slices == ((0, 2), (2, 4), (4, 5))

    def test_core_times_sum_to_total(self):
        specs = alexnet_conv_specs()
        partition = contiguous_partition(specs, [1, 3])
        assert sum(partition.core_times_s) == pytest.approx(
            sum(layer_times(specs))
        )

    def test_single_core(self):
        specs = alexnet_conv_specs()
        partition = contiguous_partition(specs, [])
        assert partition.num_cores == 1
        assert partition.bottleneck_s == pytest.approx(sum(layer_times(specs)))

    def test_rejects_bad_boundaries(self):
        specs = alexnet_conv_specs()
        with pytest.raises(ValueError):
            contiguous_partition(specs, [0])
        with pytest.raises(ValueError):
            contiguous_partition(specs, [5])
        with pytest.raises(ValueError):
            contiguous_partition(specs, [3, 2])
        with pytest.raises(ValueError):
            contiguous_partition(specs, [2, 2])
        with pytest.raises(ValueError):
            contiguous_partition([], [])

    def test_latency_is_sum_of_cores(self):
        specs = alexnet_conv_specs()
        partition = contiguous_partition(specs, [2])
        assert partition.single_image_latency_s == pytest.approx(
            sum(partition.core_times_s)
        )


class TestBalancedPartition:
    def test_optimal_never_worse_than_any_explicit(self):
        specs = alexnet_conv_specs()
        best = balanced_partition(specs, 2)
        for boundary in range(1, len(specs)):
            candidate = contiguous_partition(specs, [boundary])
            assert best.bottleneck_s <= candidate.bottleneck_s + 1e-15

    def test_one_core_per_layer(self):
        specs = alexnet_conv_specs()
        partition = balanced_partition(specs, len(specs))
        times = layer_times(specs)
        assert partition.bottleneck_s == pytest.approx(max(times))

    def test_rejects_bad_core_count(self):
        specs = alexnet_conv_specs()
        with pytest.raises(ValueError):
            balanced_partition(specs, 0)
        with pytest.raises(ValueError):
            balanced_partition(specs, 6)

    def test_balance_metric(self):
        specs = alexnet_conv_specs()
        partition = balanced_partition(specs, 2)
        assert 0.0 < partition.balance <= 1.0

    def test_bottleneck_decreases_with_cores(self):
        specs = alexnet_conv_specs()
        bottlenecks = [
            balanced_partition(specs, cores).bottleneck_s
            for cores in range(1, len(specs) + 1)
        ]
        assert all(a >= b for a, b in zip(bottlenecks, bottlenecks[1:]))


class TestPipelineSpeedup:
    def test_one_core_unity(self):
        assert pipeline_speedup(alexnet_conv_specs(), 1) == pytest.approx(1.0)

    def test_speedup_bounded_by_cores(self):
        specs = alexnet_conv_specs()
        for cores in range(1, len(specs) + 1):
            speedup = pipeline_speedup(specs, cores)
            assert 1.0 <= speedup <= cores + 1e-9

    def test_speedup_bounded_by_imbalance(self):
        # Perfect speedup requires perfectly balanced layers; AlexNet's
        # conv1 (6.7 us) caps the 5-core speedup below 5.
        specs = alexnet_conv_specs()
        total = sum(full_system_time_s(spec) for spec in specs)
        longest = max(full_system_time_s(spec) for spec in specs)
        assert pipeline_speedup(specs, 5) == pytest.approx(total / longest)
