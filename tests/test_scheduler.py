"""Tests for the receptive-field dataflow scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import LayerSchedule, dram_traffic_bytes
from repro.nn.shapes import ConvLayerSpec
from repro.workloads import alexnet_layer


class TestScheduleStructure:
    def test_number_of_steps_is_nlocs(self):
        spec = ConvLayerSpec("t", n=10, m=3, nc=2, num_kernels=4)
        schedule = LayerSchedule(spec)
        assert len(list(schedule.steps())) == spec.n_locs

    def test_first_step_loads_full_window(self):
        spec = ConvLayerSpec("t", n=10, m=3, nc=2, num_kernels=4)
        first = next(iter(LayerSchedule(spec).steps()))
        assert first.new_values == spec.n_kernel
        assert first.retired_values == 0
        assert first.is_row_start

    def test_working_set_is_always_nkernel(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=3, num_kernels=2, p=1, s=2)
        for step in LayerSchedule(spec).steps():
            assert step.working_set == spec.n_kernel

    def test_rows_and_cols_raster_order(self):
        spec = ConvLayerSpec("t", n=6, m=3, nc=1, num_kernels=1)
        steps = list(LayerSchedule(spec).steps())
        side = spec.output_side
        assert steps[0].row == 0 and steps[0].col == 0
        assert steps[side].row == 1 and steps[side].col == 0
        assert steps[side].is_row_start

    def test_indices_for_bounds(self):
        spec = ConvLayerSpec("t", n=6, m=3, nc=1, num_kernels=1)
        schedule = LayerSchedule(spec)
        with pytest.raises(IndexError):
            schedule.indices_for(spec.n_locs)
        with pytest.raises(IndexError):
            schedule.indices_for(-1)


class TestSteadyStateBound:
    @given(
        n=st.integers(min_value=4, max_value=20),
        m=st.integers(min_value=1, max_value=5),
        nc=st.integers(min_value=1, max_value=4),
        s=st.integers(min_value=1, max_value=3),
        p=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_mid_row_steps_obey_paper_bound(self, n, m, nc, s, p):
        """Paper section V-B: consecutive locations update <= nc * m * s."""
        if m > n + 2 * p:
            return
        spec = ConvLayerSpec("t", n=n, m=m, nc=nc, num_kernels=1, s=s, p=p)
        schedule = LayerSchedule(spec)
        bound = schedule.steady_state_bound()
        for step in schedule.steps():
            if not step.is_row_start:
                assert step.new_values <= bound

    def test_conv4_mid_row_update_is_1152(self):
        spec = alexnet_layer("conv4")
        schedule = LayerSchedule(spec)
        steps = list(schedule.steps())
        # Steady-state mid-row steps update exactly nc * m * s values.
        assert steps[1].new_values == 1152
        assert steps[2].new_values == 1152

    def test_row_start_can_exceed_bound(self):
        spec = ConvLayerSpec("t", n=10, m=3, nc=1, num_kernels=1)
        schedule = LayerSchedule(spec)
        steps = list(schedule.steps())
        row_start = steps[spec.output_side]
        assert row_start.new_values > schedule.steady_state_bound()


class TestConservation:
    @given(
        n=st.integers(min_value=4, max_value=16),
        m=st.integers(min_value=1, max_value=4),
        nc=st.integers(min_value=1, max_value=3),
        s=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_new_minus_retired_balances(self, n, m, nc, s):
        if m > n:
            return
        spec = ConvLayerSpec("t", n=n, m=m, nc=nc, num_kernels=1, s=s)
        steps = list(LayerSchedule(spec).steps())
        net = sum(step.new_values - step.retired_values for step in steps)
        # What remains in the window after the last step is exactly Nkernel.
        assert net == spec.n_kernel

    def test_total_loaded_at_least_distinct_values(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=2, num_kernels=1)
        schedule = LayerSchedule(spec)
        distinct = len(
            set(np.unique(np.concatenate([schedule.indices_for(i)
                                          for i in range(spec.n_locs)])))
        )
        assert schedule.total_values_loaded() >= distinct

    def test_first_touch_sums_to_distinct_values(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=2, num_kernels=1, s=2, p=1)
        schedule = LayerSchedule(spec)
        all_indices = np.concatenate(
            [schedule.indices_for(i) for i in range(spec.n_locs)]
        )
        assert schedule.first_touch_counts().sum() == len(np.unique(all_indices))

    def test_first_touch_never_exceeds_new_values(self):
        spec = ConvLayerSpec("t", n=10, m=3, nc=1, num_kernels=1)
        schedule = LayerSchedule(spec)
        first_touch = schedule.first_touch_counts()
        for step in schedule.steps():
            assert first_touch[step.index] <= step.new_values

    def test_non_overlapping_stride_loads_each_value_once(self):
        spec = ConvLayerSpec("t", n=8, m=2, nc=1, num_kernels=1, s=2)
        schedule = LayerSchedule(spec)
        # Stride == kernel: windows tile the input exactly.
        assert schedule.total_values_loaded() == spec.n_input


class TestWorkingSet:
    def test_working_set_formula(self):
        spec = ConvLayerSpec("t", n=13, m=3, nc=384, num_kernels=1, p=1)
        assert LayerSchedule(spec).working_set_values() == 384 * 3 * 15

    def test_conv1_fits_paper_sram(self):
        # conv1's 11-row band: 3 * 11 * 228 = 7524 < 8192 words.
        schedule = LayerSchedule(alexnet_layer("conv1"))
        assert schedule.working_set_values() <= 8192

    def test_conv4_exceeds_paper_sram(self):
        schedule = LayerSchedule(alexnet_layer("conv4"))
        assert schedule.working_set_values() > 8192


class TestDramTraffic:
    def test_traffic_components(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=2, num_kernels=4)
        traffic = dram_traffic_bytes(spec, value_bytes=2)
        assert traffic["weight_read"] == spec.total_weights * 2
        assert traffic["output_write"] == spec.n_output * 2
        assert traffic["total"] == (
            traffic["input_read"] + traffic["weight_read"] + traffic["output_write"]
        )

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            dram_traffic_bytes(alexnet_layer("conv5"), value_bytes=0)

    def test_stride_reuse_cuts_input_traffic(self):
        overlapping = ConvLayerSpec("t", n=16, m=4, nc=1, num_kernels=1, s=1)
        traffic = dram_traffic_bytes(overlapping, value_bytes=2)
        naive = overlapping.n_locs * overlapping.n_kernel * 2
        assert traffic["input_read"] < naive
