"""Tests for the executable pipelined minibatch runner."""

import numpy as np
import pytest

from repro.core import PCNNA
from repro.core.multicore import balanced_partition
from repro.core.serving import run_network_pipelined, stage_layer_slices
from repro.nn import build_lenet5
from repro.nn.layers import ReLU
from repro.nn.network import Network
from repro.workloads import SERVING_NETWORKS, serving_batch, serving_network


class TestStageLayerSlices:
    def test_slices_cover_all_layers_contiguously(self):
        net = build_lenet5()
        for cores in (1, 2, 3):
            _, slices = stage_layer_slices(net, cores)
            assert slices[0][0] == 0
            assert slices[-1][1] == len(net.layers)
            for (_, end), (start, _) in zip(slices[:-1], slices[1:]):
                assert end == start

    def test_every_stage_after_first_starts_at_a_conv(self):
        from repro.nn.layers import Conv2D

        net = build_lenet5()
        _, slices = stage_layer_slices(net, 3)
        for start, _ in slices[1:]:
            assert isinstance(net.layers[start], Conv2D)

    def test_partition_matches_multicore_model(self):
        net = build_lenet5()
        partition, _ = stage_layer_slices(net, 2)
        expected = balanced_partition(net.conv_specs(), 2)
        assert partition.slices == expected.slices
        assert partition.core_times_s == expected.core_times_s

    def test_rejects_networks_without_convs(self):
        net = Network([ReLU()], input_shape=(3,))
        with pytest.raises(ValueError, match="no conv layers"):
            stage_layer_slices(net, 1)

    def test_rejects_bad_core_counts(self):
        net = build_lenet5()
        with pytest.raises(ValueError, match="core count"):
            stage_layer_slices(net, 0)
        with pytest.raises(ValueError, match="core count"):
            stage_layer_slices(net, 4)
        with pytest.raises(ValueError, match="integer"):
            stage_layer_slices(net, 2.5)
        with pytest.raises(ValueError, match="integer"):
            stage_layer_slices(net, True)

    def test_clamp_cores_shrinks_oversized_requests(self):
        net = build_lenet5()
        partition, slices = stage_layer_slices(net, 64, clamp_cores=True)
        assert partition.num_cores == len(net.conv_specs())
        assert slices[-1][1] == len(net.layers)
        # Valid requests are untouched by clamping.
        exact, _ = stage_layer_slices(net, 2, clamp_cores=True)
        assert exact.slices == stage_layer_slices(net, 2)[0].slices


class TestRunNetworkPipelined:
    def test_outputs_bit_identical_to_single_core(self):
        net = build_lenet5(seed=3)
        accelerator = PCNNA()
        x = np.random.default_rng(1).normal(size=(4, 1, 32, 32))
        single = accelerator.run_network(net, x)
        for cores in (1, 2, 3):
            result = run_network_pipelined(net, x, cores)
            assert np.array_equal(result.outputs, single), cores

    def test_unbatched_input(self):
        net = build_lenet5(seed=3)
        x = np.random.default_rng(2).normal(size=(1, 32, 32))
        result = run_network_pipelined(net, x, 2)
        assert result.batch_size == 1
        assert np.array_equal(result.outputs, PCNNA().run_network(net, x))

    def test_report_contents(self):
        net = build_lenet5(seed=0)
        x = np.random.default_rng(3).normal(size=(2, 1, 32, 32))
        result = run_network_pipelined(net, x, 3)
        assert result.num_cores == 3
        assert result.batch_size == 2
        assert result.images_per_s == pytest.approx(
            1.0 / result.bottleneck_s
        )
        assert result.bottleneck_s == max(
            stage.service_time_s for stage in result.stages
        )
        assert result.single_image_latency_s == pytest.approx(
            sum(stage.service_time_s for stage in result.stages)
        )
        covered = [
            name for stage in result.stages for name in stage.layer_names
        ]
        assert covered == [layer.name for layer in net.layers]
        assert all(stage.wall_time_s >= 0.0 for stage in result.stages)
        assert "img/s" in result.describe()

    def test_rejects_empty_batch_up_front(self):
        net = build_lenet5()
        with pytest.raises(ValueError, match="at least one image"):
            run_network_pipelined(net, np.zeros((0, 1, 32, 32)), 2)

    def test_single_conv_layer_network(self):
        from repro.nn.layers import Conv2D

        rng = np.random.default_rng(0)
        net = Network(
            [Conv2D(rng.normal(size=(2, 1, 3, 3))), ReLU()],
            input_shape=(1, 8, 8),
        )
        x = rng.normal(size=(3, 1, 8, 8))
        result = run_network_pipelined(net, x, 1)
        assert result.num_cores == 1
        assert np.array_equal(result.outputs, PCNNA().run_network(net, x))
        # More cores than conv layers: clear error, or clamp on request.
        with pytest.raises(ValueError, match="core count"):
            run_network_pipelined(net, x, 2)
        clamped = run_network_pipelined(net, x, 2, clamp_cores=True)
        assert clamped.num_cores == 1

    def test_validation_happens_before_partitioning(self):
        """The error arrives from the up-front validator (clear message),
        not as a TypeError deep inside the DP recurrence."""
        net = build_lenet5()
        with pytest.raises(ValueError, match="core count must be an integer"):
            run_network_pipelined(
                net, np.zeros((1, 1, 32, 32)), 1.5  # type: ignore[arg-type]
            )

    def test_accepts_prebuilt_accelerator(self):
        net = build_lenet5(seed=0)
        x = np.random.default_rng(4).normal(size=(2, 1, 32, 32))
        accelerator = PCNNA()
        result = run_network_pipelined(net, x, 2, accelerator=accelerator)
        assert np.array_equal(
            result.outputs, accelerator.run_network(net, x)
        )


class TestServingWorkloads:
    def test_serving_network_names(self):
        for name in SERVING_NETWORKS:
            net = serving_network(name, scale=0.02)
            assert net.conv_specs(), name
        with pytest.raises(KeyError):
            serving_network("resnet")

    def test_serving_batch_shape_and_determinism(self):
        net = serving_network("lenet5")
        x = serving_batch(net, 3, seed=5)
        assert x.shape == (3, *net.input_shape)
        assert np.array_equal(x, serving_batch(net, 3, seed=5))
        with pytest.raises(ValueError):
            serving_batch(net, 0)

    @pytest.mark.parametrize("name", ["alexnet", "googlenet-stem"])
    def test_scaled_stacks_run_pipelined_end_to_end(self, name):
        net = serving_network(name, scale=0.02)
        x = serving_batch(net, 2)
        single = PCNNA().run_network(net, x)
        result = run_network_pipelined(net, x, 2)
        assert np.array_equal(result.outputs, single)
        assert result.outputs.shape == (2, 100)
