"""Tests for table/figure rendering and design-space sweeps."""

import pytest

from repro.analysis.figures import log_bar_chart
from repro.analysis.sweeps import (
    sweep_fast_clock,
    sweep_kernel_count,
    sweep_num_dacs,
    sweep_stride,
)
from repro.analysis.tables import (
    format_count,
    format_orders_of_magnitude,
    format_quantity,
    format_table,
    format_time,
)
from repro.workloads import alexnet_layer


class TestTables:
    def test_basic_table(self):
        rendered = format_table(
            ["layer", "rings"], [["conv1", 34848], ["conv2", 614400]]
        )
        assert "conv1" in rendered
        assert "614400" in rendered
        lines = rendered.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows.

    def test_title(self):
        rendered = format_table(["a"], [["x"]], title="Fig. 5")
        assert rendered.splitlines()[0] == "Fig. 5"

    def test_alignment(self):
        rendered = format_table(["col"], [["short"], ["muchlongervalue"]])
        lines = rendered.splitlines()
        assert len(lines[-1]) >= len("muchlongervalue")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_float_cells_formatted(self):
        rendered = format_table(["t"], [[6.655e-6]])
        assert "e-" in rendered or "6.6" in rendered


class TestFormatters:
    def test_format_time_units(self):
        assert format_time(0.0) == "0 s"
        assert format_time(1.5) == "1.5 s"
        assert format_time(3.3e-3).endswith("ms")
        assert format_time(6.6e-6).endswith("us")
        assert format_time(33.8e-9).endswith("ns")
        assert format_time(5e-13).endswith("ps")

    def test_format_time_rejects_negative(self):
        with pytest.raises(ValueError):
            format_time(-1.0)

    def test_format_count(self):
        assert format_count(5.2e9) == "5.2 B"
        assert format_count(34_848) == "34.8 K"
        assert format_count(12) == "12"

    def test_format_quantity(self):
        assert format_quantity(0.0) == "0"
        assert "e" in format_quantity(1e-9)

    def test_orders_of_magnitude(self):
        assert format_orders_of_magnitude(1e5) == "5.0 orders of magnitude"
        assert format_orders_of_magnitude(3.16e3).startswith("3.5")

    def test_orders_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            format_orders_of_magnitude(0.0)


class TestLogBarChart:
    def test_renders_all_series(self):
        chart = log_bar_chart(
            {"a": [1.0, 10.0], "b": [100.0, 1000.0]},
            ["x", "y"],
            title="test",
        )
        assert "test" in chart
        assert chart.count("|") == 4

    def test_longer_bars_for_larger_values(self):
        chart = log_bar_chart({"s": [1.0, 1e6]}, ["lo", "hi"])
        lines = [line for line in chart.splitlines() if "|" in line]
        assert lines[1].count("#") > lines[0].count("#")

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_bar_chart({"s": [0.0]}, ["x"])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            log_bar_chart({"s": [1.0]}, ["x", "y"])


class TestSweeps:
    def test_dac_sweep_monotone(self):
        spec = alexnet_layer("conv4")
        points = sweep_num_dacs(spec, [1, 5, 10, 50, 100])
        times = [p.full_system_time_s for p in points]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_dac_sweep_hits_optical_floor(self):
        spec = alexnet_layer("conv4")
        points = sweep_num_dacs(spec, [100_000])
        assert points[0].full_system_time_s == pytest.approx(
            points[0].optical_time_s
        )

    def test_clock_sweep_inverse(self):
        spec = alexnet_layer("conv3")
        slow, fast = sweep_fast_clock(spec, [1e9, 10e9])
        assert slow.optical_time_s == pytest.approx(10 * fast.optical_time_s)

    def test_stride_sweep_rings_constant(self):
        spec = alexnet_layer("conv4")
        points = sweep_stride(spec, [1, 2, 3])
        rings = {p.rings for p in points}
        assert len(rings) == 1

    def test_stride_sweep_fewer_locations(self):
        spec = alexnet_layer("conv4")
        one, two = sweep_stride(spec, [1, 2])
        assert two.optical_time_s < one.optical_time_s

    def test_kernel_sweep_time_flat_rings_linear(self):
        # The paper's headline property (section V-B).
        spec = alexnet_layer("conv4")
        points = sweep_kernel_count(spec, [96, 192, 384, 768])
        times = {p.full_system_time_s for p in points}
        assert len(times) == 1
        rings = [p.rings for p in points]
        assert rings[1] == 2 * rings[0]
        assert rings[3] == 8 * rings[0]
