"""Tests for repro.photonics.constants unit-conversion helpers."""

import math

import pytest

from repro.photonics import constants as C


class TestDbConversions:
    def test_db_to_linear_zero_db_is_unity(self):
        assert C.db_to_linear(0.0) == 1.0

    def test_db_to_linear_ten_db_is_ten(self):
        assert C.db_to_linear(10.0) == pytest.approx(10.0)

    def test_db_to_linear_negative(self):
        assert C.db_to_linear(-30.0) == pytest.approx(1e-3)

    def test_linear_to_db_roundtrip(self):
        for value in (0.01, 0.5, 1.0, 7.3, 1e4):
            assert C.db_to_linear(C.linear_to_db(value)) == pytest.approx(value)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            C.linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            C.linear_to_db(-1.0)


class TestPowerConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert C.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert C.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm_roundtrip(self):
        for power in (1e-6, 1e-3, 0.25, 2.0):
            assert C.dbm_to_watts(C.watts_to_dbm(power)) == pytest.approx(power)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            C.watts_to_dbm(0.0)


class TestWavelengthFrequency:
    def test_c_band_center_frequency(self):
        # 1550 nm is ~193.4 THz.
        assert C.wavelength_to_frequency(1.55e-6) == pytest.approx(
            193.4e12, rel=1e-3
        )

    def test_roundtrip(self):
        for wavelength in (1.3e-6, 1.55e-6, 2.0e-6):
            frequency = C.wavelength_to_frequency(wavelength)
            assert C.frequency_to_wavelength(frequency) == pytest.approx(wavelength)

    def test_wavelength_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            C.wavelength_to_frequency(0.0)

    def test_frequency_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            C.frequency_to_wavelength(-1.0)

    def test_photon_energy_at_1550nm(self):
        # E = h*c/lambda ~ 0.8 eV ~ 1.28e-19 J at 1550 nm.
        assert C.photon_energy(1.55e-6) == pytest.approx(1.28e-19, rel=1e-2)

    def test_photon_energy_scales_inversely_with_wavelength(self):
        assert C.photon_energy(0.775e-6) == pytest.approx(
            2.0 * C.photon_energy(1.55e-6)
        )


class TestDefaults:
    def test_c_band_center_consistency(self):
        assert C.C_BAND_CENTER_HZ == pytest.approx(
            C.SPEED_OF_LIGHT / C.C_BAND_CENTER_M
        )

    def test_ring_footprint_is_paper_value(self):
        assert C.DEFAULT_RING_FOOTPRINT_M == pytest.approx(25e-6)

    def test_speed_of_light_exact_si(self):
        assert C.SPEED_OF_LIGHT == 299_792_458.0
