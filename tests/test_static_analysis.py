"""Tier-1 gate: ``src/`` must satisfy every determinism contract.

This is the enforcement end of ``repro.lint`` — the same
:func:`repro.lint.run_lint` pass the CLI runs, executed over the real
source tree.  A clean tree is a hard requirement: any unbaselined
finding fails the suite with the rule code and ``file:line`` in the
assertion message.  The companion tests prove the gate has teeth by
re-introducing violations into copies of the tree and watching them
fail, and by checking the pinned contract registries still point at
real modules.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

from repro.lint import render_text, run_lint
from repro.lint.rules.bitident import REQUIRED_BIT_IDENTITY
from repro.lint.rules.perf import REQUIRED_HOT_PATH
from repro.lint.walker import Project

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def _lint_src():
    return run_lint([SRC], root=REPO_ROOT)


class TestSourceTreeContracts:
    def test_src_has_no_unbaselined_findings(self):
        """The gate itself: one finding anywhere in src/ fails tier 1."""
        result = _lint_src()
        assert result.ok, (
            "repro.lint found contract violations:\n"
            + render_text(result)
        )
        assert result.files_checked > 50

    def test_every_waiver_is_justified(self):
        """Waivers exist (the contracts bite) and all carry reasons."""
        result = _lint_src()
        assert result.suppressed, "expected justified pragmas in src/"
        for finding, pragma in result.suppressed:
            assert pragma.justification, (
                f"unjustified pragma at {finding.location()}"
            )
        waived_codes = {f.code for f, _ in result.suppressed}
        assert {"BIT001", "DET002", "API002"} <= waived_codes

    def test_contract_registries_point_at_real_modules(self):
        """A rename must update the pinned registries, not evade them."""
        project = Project.load([SRC], REPO_ROOT)
        for suffix in REQUIRED_BIT_IDENTITY:
            module = project.module_by_suffix(suffix)
            assert module is not None, f"registry names missing {suffix}"
            assert module.bit_identity
        for suffix, classes in REQUIRED_HOT_PATH.items():
            module = project.module_by_suffix(suffix)
            assert module is not None, f"registry names missing {suffix}"
            assert classes <= set(module.hot_path)


class TestGateHasTeeth:
    """Deleting a waiver or re-adding a violation must fail loudly."""

    def test_deleting_bit001_pragmas_resurfaces_the_folds(self, tmp_path):
        original = SRC / "repro" / "core" / "traffic.py"
        source = original.read_text(encoding="utf-8")
        stripped, count = re.subn(
            r"#\s*repro:\s*allow\[BIT001\][^\n]*", "", source
        )
        assert count >= 3, "expected justified BIT001 pragmas in traffic.py"

        copy_dir = tmp_path / "repro" / "core"
        copy_dir.mkdir(parents=True)
        target = copy_dir / "traffic.py"

        target.write_text(source, encoding="utf-8")
        clean = run_lint([target], root=tmp_path, baseline=None)
        assert clean.ok, render_text(clean)

        target.write_text(stripped, encoding="utf-8")
        broken = run_lint([target], root=tmp_path, baseline=None)
        assert len(broken.findings) == count
        for finding in broken.findings:
            assert finding.code == "BIT001"
            assert finding.path == "repro/core/traffic.py"
            assert finding.line > 0

    def test_reintroduced_numpy_fold_is_flagged_at_its_line(self, tmp_path):
        target = tmp_path / "pinned.py"
        target.write_text(
            "import numpy as np\n"
            "\n"
            "__bit_identity__ = True\n"
            "\n"
            "\n"
            "def fold(array):\n"
            "    return np.sum(array)\n",
            encoding="utf-8",
        )
        result = run_lint([target], root=tmp_path, baseline=None)
        assert [(f.code, f.line) for f in result.findings] == [("BIT001", 7)]

    def test_reintroduced_wall_clock_is_flagged_at_its_line(self, tmp_path):
        target = tmp_path / "clocky.py"
        target.write_text(
            "import time\n\n\ndef now():\n    return time.time()\n",
            encoding="utf-8",
        )
        result = run_lint([target], root=tmp_path, baseline=None)
        assert [(f.code, f.line) for f in result.findings] == [("DET002", 5)]

    def test_dropping_a_bit_identity_marker_is_flagged(self, tmp_path):
        original = SRC / "repro" / "core" / "faults.py"
        stripped = original.read_text(encoding="utf-8").replace(
            "__bit_identity__ = True", "", 1
        )
        copy_dir = tmp_path / "repro" / "core"
        copy_dir.mkdir(parents=True)
        (copy_dir / "faults.py").write_text(stripped, encoding="utf-8")
        result = run_lint([copy_dir / "faults.py"], root=tmp_path, baseline=None)
        assert "BIT001" in {f.code for f in result.findings}


class TestCliAgreesWithGate:
    """The CLI and the test gate must render the same verdict."""

    def _run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_cli_is_clean_on_src(self, tmp_path):
        artifact = tmp_path / "lint_report.json"
        proc = self._run_cli("src", "--output", str(artifact))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout
        report = json.loads(artifact.read_text(encoding="utf-8"))
        assert report["ok"] is True
        assert report["summary"]["suppressed"] > 0

    def test_cli_fails_on_a_reintroduced_violation(self, tmp_path):
        bad_dir = tmp_path / "tree"
        bad_dir.mkdir()
        bad = bad_dir / "seedless.py"
        bad.write_text(
            "import numpy as np\n\nDRAW = np.random.rand(3)\n",
            encoding="utf-8",
        )
        proc = self._run_cli(str(tmp_path / "tree"), "--root", str(tmp_path))
        assert proc.returncode == 1
        assert "DET001" in proc.stdout
        assert "tree/seedless.py:3" in proc.stdout
