"""Tests for clock-domain buffers and the dual-clock system."""

import pytest

from repro.electronics.buffers import (
    BufferOverflowError,
    BufferUnderflowError,
    Fifo,
    InputBuffer,
    KernelWeightsBuffer,
    OutputBuffer,
)
from repro.electronics.clock import (
    PCNNA_FAST_CLOCK_HZ,
    ClockDomain,
    DualClockSystem,
)


class TestFifo:
    def test_push_pop_order(self):
        fifo = Fifo(capacity=3)
        fifo.push(1)
        fifo.push(2)
        assert fifo.pop() == 1
        assert fifo.pop() == 2

    def test_overflow(self):
        fifo = Fifo(capacity=1)
        fifo.push("x")
        with pytest.raises(BufferOverflowError):
            fifo.push("y")

    def test_underflow(self):
        with pytest.raises(BufferUnderflowError):
            Fifo(capacity=1).pop()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Fifo(capacity=0)

    def test_push_many_atomic(self):
        fifo = Fifo(capacity=3)
        fifo.push(0)
        with pytest.raises(BufferOverflowError):
            fifo.push_many([1, 2, 3])
        # Nothing from the failed batch went in.
        assert fifo.occupancy == 1

    def test_push_many_success(self):
        fifo = Fifo(capacity=3)
        fifo.push_many([1, 2, 3])
        assert fifo.is_full

    def test_drain(self):
        fifo = Fifo(capacity=4)
        fifo.push_many([1, 2, 3])
        assert fifo.drain() == [1, 2, 3]
        assert fifo.is_empty

    def test_stats_track_highwater(self):
        fifo = Fifo(capacity=10)
        fifo.push_many(list(range(7)))
        fifo.drain()
        fifo.push(1)
        assert fifo.stats.max_occupancy == 7
        assert fifo.stats.pushes == 8
        assert fifo.stats.pops == 7

    def test_free_space(self):
        fifo = Fifo(capacity=5)
        fifo.push(1)
        assert fifo.free_space == 4

    def test_clear_does_not_count_pops(self):
        fifo = Fifo(capacity=2)
        fifo.push(1)
        fifo.clear()
        assert fifo.stats.pops == 0
        assert fifo.is_empty

    def test_named_buffers(self):
        assert KernelWeightsBuffer(4).name == "kernel-weights-buffer"
        assert InputBuffer(4).name == "input-buffer"
        assert OutputBuffer(4).name == "output-buffer"


class TestClockDomain:
    def test_period(self):
        clock = ClockDomain("fast", 5e9)
        assert clock.period_s == pytest.approx(0.2e-9)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            ClockDomain("bad", 0.0)

    def test_cycles_to_seconds(self):
        clock = ClockDomain("fast", 5e9)
        assert clock.cycles_to_seconds(10) == pytest.approx(2e-9)

    def test_cycles_rejects_negative(self):
        with pytest.raises(ValueError):
            ClockDomain("fast", 5e9).cycles_to_seconds(-1)

    def test_seconds_to_cycles_ceils(self):
        clock = ClockDomain("fast", 1e9)
        assert clock.seconds_to_cycles(1.5e-9) == 2
        assert clock.seconds_to_cycles(1.0e-9) == 1

    def test_seconds_rejects_negative(self):
        with pytest.raises(ValueError):
            ClockDomain("fast", 1e9).seconds_to_cycles(-1e-9)


class TestDualClockSystem:
    def test_paper_fast_clock(self):
        assert PCNNA_FAST_CLOCK_HZ == pytest.approx(5e9)
        system = DualClockSystem()
        assert system.fast.frequency_hz == pytest.approx(5e9)

    def test_ratio(self):
        system = DualClockSystem(
            fast=ClockDomain("fast", 4e9), main=ClockDomain("main", 1e9)
        )
        assert system.ratio == pytest.approx(4.0)

    def test_rejects_inverted_domains(self):
        with pytest.raises(ValueError):
            DualClockSystem(
                fast=ClockDomain("fast", 1e9), main=ClockDomain("main", 2e9)
            )

    def test_crossing_latency(self):
        system = DualClockSystem(
            fast=ClockDomain("fast", 5e9), main=ClockDomain("main", 1e9)
        )
        assert system.crossing_latency_s(2) == pytest.approx(2e-9)

    def test_crossing_rejects_nonpositive_stages(self):
        with pytest.raises(ValueError):
            DualClockSystem().crossing_latency_s(0)
