"""Tests for ConvLayerSpec and the paper's shape equations (Table I)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.shapes import ConvLayerSpec, conv_output_side
from repro.workloads import alexnet_layer


class TestValidation:
    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            ConvLayerSpec("bad", n=0, m=1, nc=1, num_kernels=1)
        with pytest.raises(ValueError):
            ConvLayerSpec("bad", n=8, m=0, nc=1, num_kernels=1)
        with pytest.raises(ValueError):
            ConvLayerSpec("bad", n=8, m=3, nc=0, num_kernels=1)
        with pytest.raises(ValueError):
            ConvLayerSpec("bad", n=8, m=3, nc=1, num_kernels=0)

    def test_rejects_bad_stride_padding(self):
        with pytest.raises(ValueError):
            ConvLayerSpec("bad", n=8, m=3, nc=1, num_kernels=1, s=0)
        with pytest.raises(ValueError):
            ConvLayerSpec("bad", n=8, m=3, nc=1, num_kernels=1, p=-1)

    def test_rejects_kernel_larger_than_padded_input(self):
        with pytest.raises(ValueError):
            ConvLayerSpec("bad", n=4, m=7, nc=1, num_kernels=1, p=1)

    def test_kernel_exactly_fits(self):
        spec = ConvLayerSpec("edge", n=4, m=6, nc=1, num_kernels=1, p=1)
        assert spec.output_side == 1


class TestPaperEquations:
    def test_eq1_ninput_conv1(self):
        # Paper: conv1 input 224 x 224 x 3 = 150 528.
        assert alexnet_layer("conv1").n_input == 150_528

    def test_eq2_nkernel_conv1(self):
        # Paper: 11 x 11 x 3 = 363.
        assert alexnet_layer("conv1").n_kernel == 363

    def test_eq2_nkernel_conv4(self):
        # Paper: conv4 "3456 microrings" = 3 x 3 x 384.
        assert alexnet_layer("conv4").n_kernel == 3456

    def test_eq3_output(self):
        spec = ConvLayerSpec("t", n=16, m=3, nc=1, num_kernels=5)
        assert spec.output_side == 14
        assert spec.n_output == 14 * 14 * 5

    def test_eq6_nlocs_is_output_over_k(self):
        spec = alexnet_layer("conv2")
        assert spec.n_locs == spec.n_output // spec.num_kernels

    def test_alexnet_nlocs(self):
        assert alexnet_layer("conv1").n_locs == 55 * 55
        assert alexnet_layer("conv2").n_locs == 27 * 27
        assert alexnet_layer("conv4").n_locs == 13 * 13

    def test_stride_update_values_eq8_numerator(self):
        # Paper eq. 8: conv4 updates nc * m * s = 384 * 3 * 1 = 1152.
        assert alexnet_layer("conv4").stride_update_values == 1152

    def test_macs(self):
        spec = ConvLayerSpec("t", n=8, m=3, nc=2, num_kernels=4)
        assert spec.macs == spec.n_locs * 18 * 4

    def test_total_weights(self):
        assert alexnet_layer("conv1").total_weights == 96 * 363

    def test_describe_mentions_name(self):
        assert "conv3" in alexnet_layer("conv3").describe()


class TestConvOutputSide:
    def test_basic(self):
        assert conv_output_side(224, 11, 2, 4) == 55

    def test_unit_kernel(self):
        assert conv_output_side(10, 1, 0, 1) == 10

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            conv_output_side(4, 7, 0, 1)
        with pytest.raises(ValueError):
            conv_output_side(0, 1, 0, 1)

    @given(
        n=st.integers(min_value=1, max_value=64),
        m=st.integers(min_value=1, max_value=11),
        p=st.integers(min_value=0, max_value=5),
        s=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=200, deadline=None)
    def test_output_side_positive_when_valid(self, n, m, p, s):
        if m > n + 2 * p:
            return
        side = conv_output_side(n, m, p, s)
        assert side >= 1
        # The last window must fit inside the padded input.
        assert (side - 1) * s + m <= n + 2 * p

    @given(
        n=st.integers(min_value=3, max_value=64),
        m=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_stride_one_no_padding(self, n, m):
        assert conv_output_side(n, m, 0, 1) == n - m + 1


class TestOutputSpecChaining:
    def test_output_spec_propagates_geometry(self):
        spec = alexnet_layer("conv3")
        follower = spec.output_spec("next")
        assert follower.n == spec.output_side
        assert follower.nc == spec.num_kernels
        assert follower.name == "next"

    def test_default_name(self):
        assert alexnet_layer("conv1").output_spec().name == "conv1-next"
