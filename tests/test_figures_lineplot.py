"""Tests for the ASCII line-plot renderer."""

import pytest

from repro.analysis.figures import ascii_line_plot


class TestAsciiLinePlot:
    def test_basic_render(self):
        plot = ascii_line_plot([0, 1, 2], [0.0, 1.0, 0.5], title="t")
        assert "t" in plot
        assert "*" in plot

    def test_extremes_on_border_rows(self):
        plot = ascii_line_plot([0, 1], [0.0, 10.0], height=5, width=10)
        lines = [line for line in plot.splitlines() if "|" in line]
        assert "*" in lines[0]    # maximum on the top row.
        assert "*" in lines[-1]   # minimum on the bottom row.

    def test_axis_labels(self):
        plot = ascii_line_plot([0, 5], [1, 2], x_label="ghz", y_label="drop")
        assert "ghz" in plot
        assert "drop" in plot

    def test_constant_series_does_not_divide_by_zero(self):
        plot = ascii_line_plot([0, 1, 2], [3.0, 3.0, 3.0])
        assert "*" in plot

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_line_plot([0, 1], [1.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            ascii_line_plot([0], [1.0])

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            ascii_line_plot([0, 1], [0, 1], height=1)

    def test_y_range_labels_present(self):
        plot = ascii_line_plot([0, 1], [2.5, 7.5])
        assert "7.5" in plot
        assert "2.5" in plot
