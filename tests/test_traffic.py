"""Tests for the request-level serving simulator and traffic generators."""

import math

import numpy as np
import pytest

from repro.analysis import (
    SERVING_SWEEP_HEADER,
    sweep_serving_policies,
)
from repro.core import PCNNA
from repro.core.traffic import (
    BatchingPolicy,
    PipelineServiceModel,
    ServingSimulator,
    replay_batches,
    replay_on_engine,
    simulate_serving,
)
from repro.workloads import (
    TRAFFIC_PATTERNS,
    alexnet_conv_specs,
    diurnal_arrivals,
    make_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
    serving_batch,
    serving_network,
)


class TestArrivalGenerators:
    def test_sorted_positive_and_deterministic(self):
        for pattern in TRAFFIC_PATTERNS:
            first = make_arrivals(pattern, 1000.0, 500, seed=3)
            second = make_arrivals(pattern, 1000.0, 500, seed=3)
            other = make_arrivals(pattern, 1000.0, 500, seed=4)
            assert first.shape == (500,), pattern
            assert np.all(first > 0.0), pattern
            assert np.all(np.diff(first) >= 0.0), pattern
            assert np.array_equal(first, second), pattern
            assert not np.array_equal(first, other), pattern

    def test_poisson_mean_rate(self):
        arrivals = poisson_arrivals(2000.0, 20_000, seed=0)
        observed = arrivals.size / arrivals[-1]
        assert observed == pytest.approx(2000.0, rel=0.05)

    def test_mmpp_is_burstier_than_poisson(self):
        """Same mean gap, but the MMPP's gap variance must be higher —
        the defining property of the bursty model."""
        poisson = poisson_arrivals(1000.0, 20_000, seed=5)
        mmpp = mmpp_arrivals(500.0, 1500.0, 20_000, mean_dwell_s=0.05, seed=5)
        poisson_cv = np.std(np.diff(poisson)) / np.mean(np.diff(poisson))
        mmpp_cv = np.std(np.diff(mmpp)) / np.mean(np.diff(mmpp))
        assert mmpp_cv > poisson_cv

    def test_diurnal_rate_oscillates(self):
        period = 1.0
        arrivals = diurnal_arrivals(200.0, 2000.0, 20_000, period, seed=6)
        phase = (arrivals % period) / period
        # Peak phase (around 0.5) must collect far more arrivals than
        # the trough phase (around 0.0).
        peak = int(((phase > 0.35) & (phase < 0.65)).sum())
        trough = int(((phase < 0.15) | (phase > 0.85)).sum())
        assert peak > 2 * trough

    def test_named_patterns_share_the_mean_rate(self):
        """make_arrivals' one shared knob really is the long-run mean
        rate, for every pattern — cross-pattern comparisons at 'the
        same rate' must be fair."""
        for pattern in TRAFFIC_PATTERNS:
            arrivals = make_arrivals(pattern, 1000.0, 100_000, seed=2)
            observed = arrivals.size / arrivals[-1]
            assert observed == pytest.approx(1000.0, rel=0.1), pattern

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10)
        with pytest.raises(ValueError):
            poisson_arrivals(10.0, 0)
        with pytest.raises(ValueError):
            mmpp_arrivals(10.0, 20.0, 5, mean_dwell_s=0.0)
        with pytest.raises(ValueError):
            diurnal_arrivals(20.0, 10.0, 5, period_s=1.0)  # peak < off-peak
        with pytest.raises(KeyError):
            make_arrivals("sawtooth", 10.0, 5)


class TestBatchingPolicy:
    def test_constructors(self):
        assert BatchingPolicy.fifo().max_batch == 1
        assert BatchingPolicy.dynamic(8, 1e-3).max_wait_s == 1e-3
        assert math.isinf(BatchingPolicy.fixed(16).max_wait_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingPolicy(name="bad", max_batch=0, max_wait_s=0.0)
        with pytest.raises(ValueError):
            BatchingPolicy(name="bad", max_batch=2, max_wait_s=-1.0)
        with pytest.raises(ValueError):
            BatchingPolicy(name="bad", max_batch=2, max_wait_s=math.nan)


class TestPipelineServiceModel:
    def test_from_specs_matches_partition(self):
        specs = alexnet_conv_specs()
        model = PipelineServiceModel.from_specs(specs, 3)
        assert model.num_cores == 3
        assert model.conv_time_s == model.partition.core_times_s
        assert len(model.weight_load_s) == 3
        assert all(w > 0 for w in model.weight_load_s)

    def test_batching_amortizes_weight_loads(self):
        model = PipelineServiceModel.from_specs(alexnet_conv_specs(), 2)
        assert model.capacity_rps(32) > 3.0 * model.capacity_rps(1)
        assert model.capacity_rps(10**6) == pytest.approx(
            model.stationary_capacity_rps, rel=1e-3
        )

    def test_clamp_and_validation(self):
        specs = alexnet_conv_specs()
        clamped = PipelineServiceModel.from_specs(
            specs, 99, clamp_cores=True
        )
        assert clamped.num_cores == len(specs)
        with pytest.raises(ValueError, match="core count"):
            PipelineServiceModel.from_specs(specs, 99)
        with pytest.raises(ValueError, match="core count"):
            PipelineServiceModel.from_specs(specs, 0)
        with pytest.raises(ValueError, match="conv layer"):
            PipelineServiceModel.from_specs([], 1)

    def test_from_network(self):
        network = serving_network("lenet5")
        model = PipelineServiceModel.from_network(network, 2)
        assert model.num_cores == 2


class TestServingSimulator:
    @staticmethod
    def _model(cores=4):
        return PipelineServiceModel.from_specs(alexnet_conv_specs(), cores)

    def test_deterministic_under_fixed_seed(self):
        """The tentpole's headline guarantee: identical percentile
        latencies across runs for the same seed."""
        model = self._model()
        policy = BatchingPolicy.dynamic(16, 1e-3)
        first = ServingSimulator(model, policy).run(
            poisson_arrivals(5000.0, 3000, seed=11)
        )
        second = ServingSimulator(model, policy).run(
            poisson_arrivals(5000.0, 3000, seed=11)
        )
        assert first.p50_s == second.p50_s
        assert first.p95_s == second.p95_s
        assert first.p99_s == second.p99_s
        assert np.array_equal(first.completion_s, second.completion_s)

    def test_conservation_and_causality(self):
        model = self._model()
        report = ServingSimulator(model, BatchingPolicy.dynamic(8, 1e-3)).run(
            poisson_arrivals(4000.0, 2000, seed=2)
        )
        assert report.num_requests == 2000
        assert sum(batch.size for batch in report.batches) == 2000
        # No request is dispatched before it arrives or completed before
        # it is dispatched.
        assert np.all(report.dispatch_s >= report.arrival_s)
        assert np.all(report.completion_s > report.dispatch_s)
        # Batches cover the requests contiguously in arrival order.
        cursor = 0
        for batch in report.batches:
            assert batch.first_request == cursor
            cursor += batch.size
        assert np.all(np.diff([b.dispatch_s for b in report.batches]) >= 0)

    def test_fifo_dispatches_every_request_alone(self):
        report = ServingSimulator(self._model(), BatchingPolicy.fifo()).run(
            poisson_arrivals(1000.0, 200, seed=3)
        )
        assert len(report.batches) == 200
        assert report.mean_batch_size == 1.0

    def test_fixed_policy_fills_batches(self):
        report = ServingSimulator(
            self._model(), BatchingPolicy.fixed(32)
        ).run(poisson_arrivals(50_000.0, 1000, seed=4))
        sizes = [batch.size for batch in report.batches]
        # Every batch but the trace-end flush is exactly full.
        assert all(size == 32 for size in sizes[:-1])
        assert sizes[-1] == 1000 - 32 * (len(sizes) - 1)

    def test_fixed_policy_flushes_sparse_tail_as_one_batch(self):
        """Once the trace can no longer fill a batch, the remainder is
        flushed as a single partial batch (not FIFO singletons), after
        the last request has arrived."""
        model = self._model()
        arrivals = poisson_arrivals(10.0, 10, seed=7)  # far below capacity
        report = ServingSimulator(model, BatchingPolicy.fixed(32)).run(
            arrivals
        )
        assert len(report.batches) == 1
        assert report.batches[0].size == 10
        assert report.batches[0].dispatch_s >= arrivals[-1]

    def test_dynamic_wait_bounds_queueing_delay(self):
        """Under light load the head never waits longer than max_wait
        before its batch is formed."""
        model = self._model()
        max_wait = 5e-4
        report = ServingSimulator(
            model, BatchingPolicy.dynamic(32, max_wait)
        ).run(poisson_arrivals(2000.0, 2000, seed=5))
        waits = report.dispatch_s - report.arrival_s
        # The *head* of each batch triggers the dispatch; its wait is
        # bounded by max_wait plus any residual core-0 busy time, which
        # light load keeps near zero.
        heads = [batch.first_request for batch in report.batches]
        assert np.max(waits[heads]) <= max_wait + model.core_busy_s(0, 32)

    def test_utilization_and_queue_metrics_are_sane(self):
        report = ServingSimulator(
            self._model(), BatchingPolicy.dynamic(16, 1e-3)
        ).run(poisson_arrivals(20_000.0, 2000, seed=6))
        assert all(0.0 < u <= 1.0 for u in report.core_utilization)
        assert 0.0 <= report.mean_queue_depth <= report.max_queue_depth
        assert report.max_queue_depth <= 2000
        assert report.throughput_rps > 0.0
        assert "req/s" in report.describe()

    def test_rejects_bad_traces(self):
        simulator = ServingSimulator(self._model(), BatchingPolicy.fifo())
        with pytest.raises(ValueError, match="empty"):
            simulator.run(np.array([]))
        with pytest.raises(ValueError, match="sorted"):
            simulator.run(np.array([2.0, 1.0]))
        with pytest.raises(ValueError, match="non-empty"):
            simulator.run(np.zeros((2, 2)))


class TestExecutedReplay:
    def test_replay_bit_identical_to_per_request_execution(self):
        network = serving_network("lenet5")
        requests = 10
        inputs = serving_batch(network, requests, seed=9)
        report = simulate_serving(
            network,
            poisson_arrivals(3e4, requests, seed=8),
            BatchingPolicy.dynamic(4, 1e-4),
            num_cores=2,
        )
        replayed = replay_on_engine(network, report, inputs)
        alone = np.stack(
            [PCNNA().run_network(network, image) for image in inputs]
        )
        assert np.array_equal(replayed, alone)

    def test_replay_validates_inputs(self):
        network = serving_network("lenet5")
        report = simulate_serving(
            network,
            poisson_arrivals(1e4, 4, seed=0),
            BatchingPolicy.fifo(),
            num_cores=1,
        )
        with pytest.raises(ValueError, match="one input per"):
            replay_on_engine(
                network, report, np.zeros((3, *network.input_shape))
            )

    def test_replay_batches_rejects_mismatched_widths(self):
        """A widths list shorter than the batches would zip-truncate
        and return uninitialized output rows — must fail loudly."""
        network = serving_network("lenet5")
        report = simulate_serving(
            network,
            poisson_arrivals(1e4, 4, seed=0),
            BatchingPolicy.fifo(),
            num_cores=1,
        )
        inputs = serving_batch(network, 4, seed=1)
        with pytest.raises(ValueError, match="width per batch"):
            replay_batches(network, report.batches, [1], inputs)


class TestServingSweep:
    def test_sweep_grid_and_rows(self):
        specs = alexnet_conv_specs()
        arrivals = poisson_arrivals(5000.0, 500, seed=1)
        policies = [BatchingPolicy.fifo(), BatchingPolicy.dynamic(8, 1e-3)]
        points = sweep_serving_policies(specs, policies, [1, 2], arrivals)
        assert len(points) == 4
        assert [p.num_cores for p in points] == [1, 1, 2, 2]
        assert {p.policy for p in points} == {
            policy.name for policy in policies
        }
        for point in points:
            assert point.throughput_rps > 0
            assert len(point.row()) == len(SERVING_SWEEP_HEADER)

    def test_sweep_validation(self):
        specs = alexnet_conv_specs()
        arrivals = poisson_arrivals(100.0, 10)
        with pytest.raises(ValueError, match="policy"):
            sweep_serving_policies(specs, [], [1], arrivals)
        with pytest.raises(ValueError, match="core count"):
            sweep_serving_policies(
                specs, [BatchingPolicy.fifo()], [], arrivals
            )
