"""Cross-cutting property-based tests on system invariants.

Collected here are the invariants that span modules — the mathematical
identities the design rests on, checked over randomized inputs with
hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.accelerator import PhotonicConvolution
from repro.core.analytical import (
    full_system_time_s,
    microrings_filtered,
    microrings_unfiltered,
    optical_core_time_s,
)
from repro.core.config import PCNNAConfig
from repro.core.scheduler import LayerSchedule
from repro.nn import functional as F
from repro.nn.shapes import ConvLayerSpec
from repro.photonics.broadcast_weight import PhotonicMacUnit


def valid_spec(draw):
    """Draw a geometrically valid ConvLayerSpec."""
    n = draw(st.integers(min_value=3, max_value=24))
    m = draw(st.integers(min_value=1, max_value=min(n, 7)))
    return ConvLayerSpec(
        name="prop",
        n=n,
        m=m,
        nc=draw(st.integers(min_value=1, max_value=8)),
        num_kernels=draw(st.integers(min_value=1, max_value=64)),
        s=draw(st.integers(min_value=1, max_value=3)),
        p=draw(st.integers(min_value=0, max_value=2)),
    )


spec_strategy = st.composite(valid_spec)()


class TestAnalyticalIdentities:
    @given(spec=spec_strategy)
    @settings(max_examples=100, deadline=None)
    def test_filtering_saves_exactly_ninput(self, spec):
        """eq. 4 / eq. 5 == Ninput for every geometry."""
        assert microrings_unfiltered(spec) == (
            microrings_filtered(spec) * spec.n_input
        )

    @given(spec=spec_strategy)
    @settings(max_examples=100, deadline=None)
    def test_full_system_never_beats_optical_core(self, spec):
        assert full_system_time_s(spec) >= optical_core_time_s(spec) - 1e-18

    @given(spec=spec_strategy)
    @settings(max_examples=100, deadline=None)
    def test_eq3_consistency(self, spec):
        """Noutput == Nlocs * K and both positive."""
        assert spec.n_output == spec.n_locs * spec.num_kernels
        assert spec.n_locs >= 1

    @given(spec=spec_strategy, extra_dacs=st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_more_dacs_never_slower(self, spec, extra_dacs):
        base = PCNNAConfig()
        more = base.with_dacs(base.num_input_dacs + extra_dacs)
        assert full_system_time_s(spec, more) <= full_system_time_s(spec, base)


class TestScheduleInvariants:
    @given(spec=spec_strategy)
    @settings(max_examples=40, deadline=None)
    def test_first_step_is_full_window(self, spec):
        first = next(iter(LayerSchedule(spec).steps()))
        assert first.new_values == spec.n_kernel

    @given(spec=spec_strategy)
    @settings(max_examples=40, deadline=None)
    def test_loaded_values_bounded(self, spec):
        """Total loads lie between distinct-value count and Nlocs*Nkernel."""
        schedule = LayerSchedule(spec)
        total = schedule.total_values_loaded()
        assert total <= spec.n_locs * spec.n_kernel
        assert total >= spec.n_kernel  # at least the first window.

    @given(spec=spec_strategy)
    @settings(max_examples=40, deadline=None)
    def test_first_touch_total_independent_of_order(self, spec):
        schedule = LayerSchedule(spec)
        distinct = int(
            np.unique(
                np.concatenate(
                    [schedule.indices_for(i) for i in range(spec.n_locs)]
                )
            ).size
        )
        assert int(schedule.first_touch_counts().sum()) == distinct


class TestPhotonicLinearity:
    @given(
        x=arrays(float, 8, elements=st.floats(min_value=0.0, max_value=0.5)),
        y=arrays(float, 8, elements=st.floats(min_value=0.0, max_value=0.5)),
        w=arrays(float, 8, elements=st.floats(min_value=-1.0, max_value=1.0)),
    )
    @settings(max_examples=30, deadline=None)
    def test_mac_additive_in_inputs(self, x, y, w):
        """dot(x + y, w) == dot(x, w) + dot(y, w) through the devices."""
        mac = PhotonicMacUnit(8)
        combined = mac.dot(x + y, w)
        separate = mac.dot(x, w) + mac.dot(y, w)
        assert combined == pytest.approx(separate, abs=1e-9)

    @given(
        x=arrays(float, 6, elements=st.floats(min_value=0.0, max_value=1.0)),
        w=arrays(float, 6, elements=st.floats(min_value=-1.0, max_value=1.0)),
        scale=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_mac_homogeneous_in_weights(self, x, w, scale):
        mac = PhotonicMacUnit(6)
        assert mac.dot(x, w * scale) == pytest.approx(
            scale * mac.dot(x, w), abs=1e-9
        )

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_mac_permutation_invariant(self, seed):
        """Reordering (input, weight) pairs cannot change the sum."""
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, 10)
        w = rng.uniform(-1, 1, 10)
        perm = rng.permutation(10)
        mac = PhotonicMacUnit(10)
        assert mac.dot(x, w) == pytest.approx(
            mac.dot(x[perm], w[perm]), abs=1e-9
        )


class TestConvolutionEngineProperties:
    @given(
        seed=st.integers(min_value=0, max_value=200),
        offset=st.floats(min_value=-10.0, max_value=10.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_input_shift_equivariance(self, seed, offset):
        """conv(x + c, k) == conv(x, k) + c * sum(k) per kernel — the
        photonic affine encoding must preserve this identity."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 6, 6))
        k = rng.normal(size=(2, 1, 3, 3))
        engine = PhotonicConvolution()
        base = engine.convolve(x, k)
        shifted = engine.convolve(x + offset, k)
        kernel_sums = k.reshape(2, -1).sum(axis=1)
        expected = base + offset * kernel_sums[:, None, None]
        assert np.allclose(shifted, expected, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_kernel_negation(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, 5, 5))
        k = rng.normal(size=(3, 2, 2, 2))
        engine = PhotonicConvolution()
        assert np.allclose(
            engine.convolve(x, -k), -engine.convolve(x, k), atol=1e-9
        )

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_unit_kernel_recovers_input(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 5, 5))
        k = np.ones((1, 1, 1, 1))
        out = PhotonicConvolution().convolve(x, k)
        assert np.allclose(out, x, atol=1e-9)
