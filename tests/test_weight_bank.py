"""Tests for the MRR weight bank."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.photonics.microring import MicroringDesign
from repro.photonics.noise import NoiseConfig, ideal
from repro.photonics.wdm import WdmGrid
from repro.photonics.weight_bank import WeightBank


def make_bank(num_rings=8, noise=None, **design_kwargs) -> WeightBank:
    return WeightBank(
        WdmGrid(num_rings),
        MicroringDesign(**design_kwargs),
        noise if noise is not None else ideal(),
    )


class TestConfiguration:
    def test_one_ring_per_channel(self):
        bank = make_bank(12)
        assert bank.num_rings == 12
        assert len(bank.rings) == 12

    def test_set_weights_shape_check(self):
        bank = make_bank(4)
        with pytest.raises(ValueError):
            bank.set_weights(np.zeros(5))

    def test_set_weights_range_check(self):
        bank = make_bank(3)
        with pytest.raises(ValueError):
            bank.set_weights(np.array([0.0, 1.5, 0.0]))

    def test_weights_property_returns_copy(self):
        bank = make_bank(3)
        weights = np.array([0.1, -0.2, 0.3])
        bank.set_weights(weights)
        returned = bank.weights
        returned[0] = 99.0
        assert bank.weights[0] == pytest.approx(0.1)

    def test_extreme_weights_accepted(self):
        bank = make_bank(2)
        bank.set_weights(np.array([-1.0, 1.0]))
        effective = bank.effective_weights()
        assert effective[0] == pytest.approx(-1.0)
        assert effective[1] == pytest.approx(1.0)


class TestIdealTransfer:
    @given(
        weights=arrays(
            float,
            6,
            elements=st.floats(min_value=-1.0, max_value=1.0, width=64),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_effective_weights_match_programmed(self, weights):
        bank = make_bank(6)
        bank.set_weights(weights)
        assert np.allclose(bank.effective_weights(), weights, atol=1e-12)

    def test_transmission_fractions_bounded(self):
        bank = make_bank(5)
        bank.set_weights(np.linspace(-1, 1, 5))
        drop, through = bank.transmission_matrix()
        assert np.all(drop >= 0) and np.all(drop <= 1)
        assert np.all(through >= 0) and np.all(through <= 1)
        assert np.all(drop + through <= 1.0 + 1e-12)

    def test_apply_weights_power(self):
        bank = make_bank(4)
        bank.set_weights(np.array([1.0, 0.0, -1.0, 0.5]))
        powers = np.full(4, 2e-3)
        drop, through = bank.apply(powers)
        # weight 1 -> all power dropped; weight -1 -> all passed through.
        assert drop[0] == pytest.approx(2e-3)
        assert through[0] == pytest.approx(0.0, abs=1e-12)
        assert drop[2] == pytest.approx(0.0, abs=1e-12)
        assert through[2] == pytest.approx(2e-3)
        # weight 0 -> split evenly.
        assert drop[1] == pytest.approx(1e-3)

    def test_apply_shape_check(self):
        bank = make_bank(4)
        bank.set_weights(np.zeros(4))
        with pytest.raises(ValueError):
            bank.apply(np.zeros(3))

    def test_apply_rejects_negative_power(self):
        bank = make_bank(2)
        bank.set_weights(np.zeros(2))
        with pytest.raises(ValueError):
            bank.apply(np.array([1e-3, -1e-3]))


class TestNonIdealTransfer:
    def test_tuning_error_perturbs_weights(self):
        noise = NoiseConfig(enabled=True, ring_tuning_sigma=0.01, seed=1)
        bank = make_bank(16, noise=noise)
        target = np.zeros(16)
        bank.set_weights(target)
        effective = bank.effective_weights()
        assert not np.allclose(effective, target)
        assert np.max(np.abs(effective - target)) < 0.1

    def test_crosstalk_perturbs_neighbours(self):
        noise = NoiseConfig(enabled=True, shot_noise=False, thermal_noise=False,
                            crosstalk=True, seed=0)
        bank = make_bank(8, noise=noise, quality_factor=5_000)
        weights = np.zeros(8)
        weights[3] = 1.0
        bank.set_weights(weights)
        effective = bank.effective_weights()
        # The tuned ring's neighbours see some leakage.
        assert effective[2] != pytest.approx(0.0, abs=1e-6)

    def test_crosstalk_shrinks_with_quality_factor(self):
        def worst_error(q):
            noise = NoiseConfig(enabled=True, shot_noise=False,
                                thermal_noise=False, crosstalk=True, seed=0)
            bank = make_bank(8, noise=noise, quality_factor=q)
            weights = np.full(8, 0.5)
            bank.set_weights(weights)
            return float(np.max(np.abs(bank.effective_weights() - weights)))

        assert worst_error(50_000) < worst_error(5_000)

    def test_crosstalk_conserves_energy(self):
        noise = NoiseConfig(enabled=True, shot_noise=False, thermal_noise=False,
                            crosstalk=True, seed=0)
        bank = make_bank(6, noise=noise)
        bank.set_weights(np.linspace(-0.9, 0.9, 6))
        drop, through = bank.transmission_matrix()
        assert np.all(drop + through <= 1.0 + 1e-9)
        assert np.all(drop >= -1e-12)
        assert np.all(through >= -1e-12)

    def test_tuning_error_reproducible(self):
        def effective(seed):
            noise = NoiseConfig(enabled=True, ring_tuning_sigma=0.02, seed=seed)
            bank = make_bank(8, noise=noise)
            bank.set_weights(np.zeros(8))
            return bank.effective_weights()

        assert np.array_equal(effective(9), effective(9))
        assert not np.array_equal(effective(9), effective(10))
