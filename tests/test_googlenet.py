"""Tests for the GoogLeNet conv workload."""

import pytest

from repro.core.analytical import analyze_network, network_totals
from repro.workloads import googlenet_conv_specs, inception_module_specs


class TestGoogLeNetWorkload:
    def test_fifty_eight_convolutions(self):
        specs = googlenet_conv_specs()
        # Stem (3) + 9 inception modules x 6 branch convs.
        assert len(specs) == 3 + 9 * 6

    def test_stem_geometry(self):
        conv1 = googlenet_conv_specs()[0]
        assert conv1.output_side == 112  # 224, 7x7, s=2, p=3.

    def test_inception_branch_shapes_consistent(self):
        for spec in googlenet_conv_specs():
            # Same-padding branches preserve the spatial side.
            if spec.m in (3, 5) and "inception" in spec.name:
                assert spec.output_side == spec.n

    def test_module_lookup(self):
        branches = inception_module_specs("inception_4a")
        assert len(branches) == 6
        assert branches[0].name == "inception_4a/1x1"
        assert all(spec.n == 14 for spec in branches)

    def test_module_lookup_unknown(self):
        with pytest.raises(KeyError):
            inception_module_specs("inception_9z")

    def test_total_macs_in_published_range(self):
        # GoogLeNet is ~1.5 G MACs for one inference (conv-dominated).
        totals = network_totals(analyze_network(googlenet_conv_specs()))
        assert 1.2e9 < totals["macs"] < 2.0e9

    def test_pcnna_analytics_apply(self):
        analyses = analyze_network(googlenet_conv_specs())
        for analysis in analyses:
            assert analysis.ring_savings == analysis.spec.n_input
            assert analysis.full_system_time_s >= analysis.optical_time_s

    def test_one_by_one_convs_are_dac_light(self):
        # 1x1 reductions update only nc values per location: the smallest
        # front-end load in the network.
        specs = googlenet_conv_specs()
        one_by_one = [spec for spec in specs if spec.m == 1]
        assert one_by_one
        for spec in one_by_one:
            assert spec.stride_update_values == spec.nc

    def test_conv_stack_latency_order_100us(self):
        # 58 sequential layer requests: ~106 us on the paper config —
        # still 2+ orders under electronic engines.
        totals = network_totals(analyze_network(googlenet_conv_specs()))
        assert 50e-6 < totals["full_system_time_s"] < 200e-6
