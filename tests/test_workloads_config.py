"""Tests for workload tables and the PCNNA configuration."""

import pytest

from repro.core.config import PAPER_CONFIG, PCNNAConfig, paper_assumptions
from repro.nn.shapes import ConvLayerSpec
from repro.workloads import (
    ALEXNET_CONV_LAYERS,
    LENET5_CONV_LAYERS,
    VGG16_CONV_LAYERS,
    alexnet_conv_specs,
    alexnet_layer,
    lenet5_conv_specs,
    synthetic_layer_sweep,
    vgg16_conv_specs,
)


class TestAlexNetTable:
    def test_five_layers(self):
        assert len(ALEXNET_CONV_LAYERS) == 5

    def test_paper_conv1_geometry(self):
        spec = alexnet_layer("conv1")
        assert (spec.n, spec.m, spec.nc, spec.num_kernels) == (224, 11, 3, 96)
        assert (spec.s, spec.p) == (4, 2)

    def test_feature_map_chaining(self):
        # conv1 -> 55 -> pool 27; conv2 -> 27 -> pool 13; conv3-5 at 13.
        assert alexnet_layer("conv1").output_side == 55
        assert alexnet_layer("conv2").output_side == 27
        assert alexnet_layer("conv3").output_side == 13
        assert alexnet_layer("conv4").output_side == 13
        assert alexnet_layer("conv5").output_side == 13

    def test_unknown_layer(self):
        with pytest.raises(KeyError):
            alexnet_layer("conv6")

    def test_specs_returns_fresh_list(self):
        first = alexnet_conv_specs()
        first.pop()
        assert len(alexnet_conv_specs()) == 5


class TestOtherSuites:
    def test_vgg_has_thirteen(self):
        assert len(VGG16_CONV_LAYERS) == 13
        assert len(vgg16_conv_specs()) == 13

    def test_vgg_all_3x3(self):
        assert all(spec.m == 3 for spec in VGG16_CONV_LAYERS)

    def test_lenet_layers(self):
        assert len(LENET5_CONV_LAYERS) == 3
        assert lenet5_conv_specs()[0].n == 32

    def test_synthetic_sweep_valid_specs(self):
        specs = list(synthetic_layer_sweep())
        assert len(specs) > 50
        for spec in specs:
            assert isinstance(spec, ConvLayerSpec)
            assert spec.output_side >= 1

    def test_synthetic_sweep_skips_oversized_kernels(self):
        specs = list(
            synthetic_layer_sweep(input_sides=[4], kernel_sizes=[3, 9])
        )
        assert all(spec.m <= 4 for spec in specs)

    def test_synthetic_sweep_custom_lists(self):
        specs = list(
            synthetic_layer_sweep(
                input_sides=[8],
                kernel_sizes=[3],
                channel_counts=[4],
                kernel_counts=[2],
                strides=[1],
            )
        )
        assert len(specs) == 1


class TestConfig:
    def test_paper_defaults(self):
        config = PAPER_CONFIG
        assert config.fast_clock_hz == pytest.approx(5e9)
        assert config.num_input_dacs == 10
        assert config.num_weight_dacs == 1
        assert config.input_dac.sample_rate_hz == pytest.approx(6e9)
        assert config.adc.sample_rate_hz == pytest.approx(2.8e9)
        assert config.sram.capacity_words == 8192

    def test_fast_clock_period(self):
        assert PCNNAConfig().fast_clock_period_s == pytest.approx(0.2e-9)

    def test_value_bytes(self):
        assert PCNNAConfig(value_bits=16).value_bytes == 2
        assert PCNNAConfig(value_bits=12).value_bytes == 2
        assert PCNNAConfig(value_bits=8).value_bytes == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PCNNAConfig(fast_clock_hz=0.0)
        with pytest.raises(ValueError):
            PCNNAConfig(num_input_dacs=0)
        with pytest.raises(ValueError):
            PCNNAConfig(num_adcs=-1)
        with pytest.raises(ValueError):
            PCNNAConfig(value_bits=0)
        with pytest.raises(ValueError):
            PCNNAConfig(max_parallel_kernels=0)

    def test_with_helpers_create_copies(self):
        base = PCNNAConfig()
        more_dacs = base.with_dacs(20)
        assert more_dacs.num_input_dacs == 20
        assert base.num_input_dacs == 10
        faster = base.with_fast_clock(10e9)
        assert faster.fast_clock_hz == pytest.approx(10e9)

    def test_with_noise(self):
        from repro.photonics.noise import realistic

        noisy = PCNNAConfig().with_noise(realistic(3))
        assert noisy.noise.enabled

    def test_paper_assumptions_unbounded_memory(self):
        assert (
            paper_assumptions().dram.bandwidth_bytes_per_s
            > PCNNAConfig().dram.bandwidth_bytes_per_s
        )
