"""Unit tests for the fault/drift subsystem building blocks.

The differential harness (``tests/test_differential_faults.py``) pins
the end-to-end guarantees; these tests cover the pieces: drift-state
physics on the probe bank, fault-event/schedule semantics and
validation, recalibration policy accounting, named scenarios, and the
fault-tolerance sweep surface.
"""

import math

import numpy as np
import pytest

from repro.analysis import (
    FAULT_SWEEP_HEADER,
    sweep_fault_tolerance,
)
from repro.core.faults import (
    FAULT_KINDS,
    CoreHealthState,
    FaultEvent,
    FaultSchedule,
    RecalibrationPolicy,
)
from repro.core.traffic import BatchingPolicy
from repro.photonics.drift import (
    BankCondition,
    DriftingWeightBank,
    default_probe_targets,
    drift_transfer,
)
from repro.workloads import (
    FAULT_SCENARIOS,
    alexnet_conv_specs,
    fault_scenario,
    poisson_arrivals,
)


class TestBankCondition:
    def test_defaults_are_pristine(self):
        assert BankCondition().pristine
        assert not BankCondition(ambient_k=0.1).pristine
        assert not BankCondition(dead_rings=(1,)).pristine
        assert not BankCondition(tia_gain=0.9).pristine

    def test_validation(self):
        with pytest.raises(ValueError):
            BankCondition(ambient_k=-0.1)
        with pytest.raises(ValueError):
            BankCondition(ambient_k=math.nan)
        with pytest.raises(ValueError):
            BankCondition(crosstalk_coupling=1.0)
        with pytest.raises(ValueError):
            BankCondition(tia_gain=1.5)


class TestDriftingWeightBank:
    def test_calibration_squashes_baseline_error(self):
        probe = DriftingWeightBank()
        open_loop = probe.weight_error()
        result = probe.recalibrate()
        assert result.converged
        assert probe.weight_error() < 1e-5 < open_loop

    def test_drift_error_monotone_in_ambient(self):
        probe = DriftingWeightBank()
        probe.recalibrate()
        errors = []
        for ambient in [0.0, 0.02, 0.1, 0.5, 2.0]:
            probe.set_condition(BankCondition(ambient_k=ambient))
            errors.append(probe.weight_error())
        assert all(b > a for a, b in zip(errors, errors[1:]))

    def test_recalibration_compensates_moderate_drift(self):
        probe = DriftingWeightBank()
        probe.recalibrate()
        probe.set_condition(BankCondition(ambient_k=0.05))
        drifted = probe.weight_error()
        probe.recalibrate()
        assert probe.weight_error() < 0.1 * drifted

    def test_dead_ring_is_uncalibratable(self):
        probe = DriftingWeightBank()
        probe.recalibrate()
        probe.set_condition(BankCondition(dead_rings=(probe.num_rings - 1,)))
        dead_error = probe.weight_error()
        assert dead_error > 1.0  # pinned to the rail vs a +0.75 target
        result = probe.recalibrate()
        assert not result.converged
        assert probe.weight_error() == pytest.approx(dead_error, rel=0.1)

    def test_stuck_ring_ignores_new_commands(self):
        probe = DriftingWeightBank()
        probe.recalibrate()
        frozen = probe.commanded
        probe.set_condition(BankCondition(stuck_rings=(3,)))
        asked = np.clip(frozen + 0.2, -1.0, 1.0)
        probe.set_weights(asked)
        assert probe.commanded[3] == frozen[3]
        others = [i for i in range(probe.num_rings) if i != 3]
        assert np.array_equal(probe.commanded[others], asked[others])

    def test_thaw_restores_command_authority(self):
        probe = DriftingWeightBank()
        probe.set_condition(BankCondition(stuck_rings=(2,)))
        probe.set_condition(BankCondition())
        target = default_probe_targets(probe.num_rings)
        probe.set_weights(target)
        assert np.array_equal(probe.commanded, target)

    def test_tia_droop_scales_readout(self):
        probe = DriftingWeightBank()
        probe.recalibrate()
        healthy = probe.effective_weights()
        probe.set_condition(BankCondition(tia_gain=0.5))
        assert np.allclose(probe.effective_weights(), 0.5 * healthy)

    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            DriftingWeightBank(targets=np.zeros((2, 2)))
        with pytest.raises(ValueError, match="rings cannot realize"):
            DriftingWeightBank(targets=np.zeros(4), num_rings=8)
        with pytest.raises(ValueError, match="probe ring"):
            default_probe_targets(0)
        probe = DriftingWeightBank()
        with pytest.raises(ValueError, match="expected"):
            probe.set_weights(np.zeros(3))

    def test_single_ring_probe(self):
        probe = DriftingWeightBank(num_rings=1)
        probe.recalibrate()
        assert probe.weight_error() < 1e-5


class TestDriftTransfer:
    def test_zero_shift_is_near_identity(self):
        weights = np.linspace(-1.0, 1.0, 21)
        assert np.max(np.abs(drift_transfer(weights, 0.0) - weights)) < 1e-6

    def test_divergence_grows_with_shift(self):
        weights = np.linspace(-0.9, 0.9, 13)
        small = np.max(np.abs(drift_transfer(weights, 1e9) - weights))
        large = np.max(np.abs(drift_transfer(weights, 5e9) - weights))
        assert 0.0 < small < large

    def test_gain_bounds_the_range(self):
        weights = np.linspace(-1.0, 1.0, 9)
        effective = drift_transfer(weights, 2e9, tia_gain=0.7)
        assert np.all(np.abs(effective) <= 0.7 + 1e-12)

    def test_preserves_shape(self):
        weights = np.zeros((3, 4, 2, 2))
        assert drift_transfer(weights, 1e9).shape == weights.shape

    def test_validation(self):
        with pytest.raises(ValueError, match=r"\[-1, 1\]"):
            drift_transfer(np.array([1.5]), 0.0)
        with pytest.raises(ValueError, match="shift"):
            drift_transfer(np.array([0.5]), -1.0)
        with pytest.raises(ValueError, match="shift"):
            drift_transfer(np.array([0.5]), math.nan)
        with pytest.raises(ValueError, match="gain"):
            drift_transfer(np.array([0.5]), 0.0, tia_gain=2.0)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor", 0, 0.0, 1.0)
        with pytest.raises(ValueError, match="core"):
            FaultEvent("thermal_ramp", -1, 0.0, 1.0)
        with pytest.raises(ValueError, match="core"):
            FaultEvent("thermal_ramp", 1.5, 0.0, 1.0)
        with pytest.raises(ValueError, match="onset"):
            FaultEvent("thermal_ramp", 0, -1.0, 1.0)
        with pytest.raises(ValueError, match="magnitude"):
            FaultEvent("thermal_ramp", 0, 0.0, -1.0)
        with pytest.raises(ValueError, match="fraction"):
            FaultEvent("tia_droop", 0, 0.0, 1.5)
        with pytest.raises(ValueError, match="below 1"):
            FaultEvent("crosstalk", 0, 0.0, 1.0)
        with pytest.raises(ValueError, match="duration"):
            FaultEvent("thermal_ramp", 0, 0.0, 1.0, duration_s=0.0)
        with pytest.raises(ValueError, match="ring indices"):
            FaultEvent("dead_rings", 0, 0.0, 1.0, rings=(-1,))
        with pytest.raises(ValueError, match="candidate rings"):
            FaultEvent("dead_rings", 0, 0.0, 1.0)

    def test_affected_rings_fraction(self):
        event = FaultEvent("dead_rings", 0, 0.0, 0.5, rings=(3, 1, 7, 5))
        assert event.affected_rings == (3, 1)
        assert FaultEvent(
            "dead_rings", 0, 0.0, 1.0, rings=(2, 4)
        ).affected_rings == (2, 4)
        assert FaultEvent(
            "stuck_rings", 0, 0.0, 0.0, rings=()
        ).affected_rings == ()


class TestFaultSchedule:
    def test_none_and_uniform_drift(self):
        assert FaultSchedule.none().events == ()
        drift = FaultSchedule.uniform_drift(2.0, 3)
        assert len(drift.events) == 3
        assert {event.core for event in drift.events} == {0, 1, 2}
        assert all(event.magnitude == 2.0 for event in drift.events)
        with pytest.raises(ValueError, match="core"):
            FaultSchedule.uniform_drift(2.0, 0)

    def test_random_is_deterministic_and_valid(self):
        first = FaultSchedule.random(seed=5, num_cores=2, horizon_s=1.0)
        second = FaultSchedule.random(seed=5, num_cores=2, horizon_s=1.0)
        other = FaultSchedule.random(seed=6, num_cores=2, horizon_s=1.0)
        assert first == second
        assert first != other
        assert all(event.kind in FAULT_KINDS for event in first.events)
        # A long enough schedule exercises every kind's magnitude rule.
        big = FaultSchedule.random(
            seed=0, num_cores=1, horizon_s=1.0, events_per_core=40
        )
        assert {event.kind for event in big.events} == set(FAULT_KINDS)
        with pytest.raises(ValueError, match="core"):
            FaultSchedule.random(0, 0, 1.0)
        with pytest.raises(ValueError, match="horizon"):
            FaultSchedule.random(0, 1, 0.0)
        with pytest.raises(ValueError, match="event"):
            FaultSchedule.random(0, 1, 1.0, events_per_core=0)

    def test_scaled_clamps_fractions(self):
        schedule = FaultSchedule(
            "s",
            (
                FaultEvent("tia_droop", 0, 0.0, 0.8),
                FaultEvent("crosstalk", 0, 0.0, 0.5),
                FaultEvent("thermal_ramp", 0, 0.0, 3.0),
            ),
        )
        doubled = schedule.scaled(2.0)
        assert doubled.events[0].magnitude == 1.0  # clamped fraction
        assert doubled.events[1].magnitude == 0.99  # capped coupling
        assert doubled.events[2].magnitude == 6.0  # rates scale freely
        with pytest.raises(ValueError, match="factor"):
            schedule.scaled(-1.0)

    def test_events_for_sorts_by_onset(self):
        schedule = FaultSchedule(
            "s",
            (
                FaultEvent("thermal_ramp", 0, 2.0, 1.0),
                FaultEvent("thermal_ramp", 1, 0.0, 1.0),
                FaultEvent("crosstalk", 0, 1.0, 0.1),
            ),
        )
        onsets = [event.onset_s for event in schedule.events_for(0)]
        assert onsets == [1.0, 2.0]
        assert schedule.events_for(9) == ()


class TestCoreHealthState:
    def test_condition_composition(self):
        schedule = FaultSchedule(
            "s",
            (
                FaultEvent("thermal_ramp", 0, 1.0, 0.5, duration_s=2.0),
                FaultEvent("crosstalk", 0, 2.0, 0.2, duration_s=1.0),
                FaultEvent("tia_droop", 0, 0.0, 0.4, duration_s=4.0),
                FaultEvent("dead_rings", 0, 3.0, 1.0, rings=(1,)),
            ),
        )
        state = CoreHealthState(0, schedule)
        before = state.condition_at(0.5)
        assert before.ambient_k == 0.0
        assert before.crosstalk_coupling == 0.0
        assert before.tia_gain == pytest.approx(1.0 - 0.4 * 0.125)
        mid = state.condition_at(2.5)
        assert mid.ambient_k == pytest.approx(0.75)  # 1.5 s into the ramp
        assert mid.crosstalk_coupling == pytest.approx(0.2)
        assert mid.dead_rings == ()
        late = state.condition_at(10.0)
        assert late.ambient_k == pytest.approx(1.0)  # ramp held after end
        assert late.crosstalk_coupling == 0.0  # excursion reverted
        assert late.tia_gain == pytest.approx(0.6)
        assert late.dead_rings == (1,)

    def test_step_droop_with_infinite_duration(self):
        schedule = FaultSchedule(
            "s", (FaultEvent("tia_droop", 0, 1.0, 0.3),)
        )
        state = CoreHealthState(0, schedule)
        assert state.condition_at(0.5).tia_gain == 1.0
        assert state.condition_at(1.0).tia_gain == pytest.approx(0.7)

    def test_transient_recovery_rearms_recalibration(self):
        """An excursion that ends re-arms an exhausted recalibration."""
        policy = RecalibrationPolicy()
        schedule = FaultSchedule(
            "s",
            (
                FaultEvent(
                    "crosstalk", 0, 1.0, 0.9, duration_s=1.0
                ),
            ),
        )
        state = CoreHealthState(0, schedule)
        state.advance_to(1.5)
        assert state.should_recalibrate(policy)
        state.recalibrate(policy)
        if state.recal_exhausted:
            state.advance_to(3.0)  # excursion over
            assert not state.recal_exhausted

    def test_out_of_range_ring_indices_wrap(self):
        schedule = FaultSchedule(
            "s", (FaultEvent("dead_rings", 0, 0.0, 1.0, rings=(13,)),)
        )
        state = CoreHealthState(0, schedule, probe_rings=8)
        state.advance_to(1.0)
        assert state.error > 0.5  # ring 13 % 8 == 5 died

    def test_out_of_range_stuck_rings_survive_recalibration(self):
        """Regression: a stuck-ring index beyond the probe used to raise
        IndexError when recalibration re-commanded the bank (the frozen
        command was keyed by the raw index, not the wrapped one)."""
        policy = RecalibrationPolicy()
        schedule = FaultSchedule(
            "s",
            (
                FaultEvent("stuck_rings", 0, 0.0, 1.0, rings=(8, 13)),
                FaultEvent("thermal_ramp", 0, 0.0, 0.5),
            ),
        )
        state = CoreHealthState(0, schedule, probe_rings=8)
        state.advance_to(0.2)
        assert state.should_recalibrate(policy)
        state.recalibrate(policy)  # must not raise
        assert math.isfinite(state.error)


class TestRecalibrationPolicy:
    def test_downtime_accounting(self):
        policy = RecalibrationPolicy(
            iteration_time_s=1e-5, overhead_s=1e-4
        )
        assert policy.downtime_s(10) == pytest.approx(2e-4)

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            RecalibrationPolicy(error_threshold=0.0)
        with pytest.raises(ValueError, match="iteration"):
            RecalibrationPolicy(max_iterations=0)
        with pytest.raises(ValueError, match="times"):
            RecalibrationPolicy(iteration_time_s=-1.0)


class TestFaultScenarios:
    @pytest.mark.parametrize("name", FAULT_SCENARIOS)
    def test_every_scenario_builds_and_scales_to_noop(self, name):
        schedule = fault_scenario(name, num_cores=3, horizon_s=0.5)
        assert schedule.events
        assert all(event.core < 3 for event in schedule.events)
        disarmed = fault_scenario(name, 3, 0.5, severity=0.0)
        assert all(event.magnitude == 0.0 for event in disarmed.events)
        assert all(
            event.affected_rings == () for event in disarmed.events
        )

    def test_scenarios_are_deterministic(self):
        for name in FAULT_SCENARIOS:
            assert fault_scenario(name, 2, 1.0) == fault_scenario(
                name, 2, 1.0
            )

    def test_validation(self):
        with pytest.raises(KeyError, match="unknown fault scenario"):
            fault_scenario("volcano", 2, 1.0)
        with pytest.raises(ValueError, match="core"):
            fault_scenario("slow-drift", 0, 1.0)
        with pytest.raises(ValueError, match="horizon"):
            fault_scenario("slow-drift", 2, 0.0)

    def test_single_core_scenarios(self):
        for name in FAULT_SCENARIOS:
            schedule = fault_scenario(name, 1, 1.0)
            assert all(event.core == 0 for event in schedule.events)


class TestDegradedReportSurface:
    def test_describe_and_simulator_validation(self):
        from repro.core.faults import (
            DegradedServingSimulator,
            simulate_degraded_serving,
        )
        from repro.core.traffic import PipelineServiceModel
        from repro.workloads import serving_network

        specs = alexnet_conv_specs()
        model = PipelineServiceModel.from_specs(specs, 2)
        with pytest.raises(ValueError, match="fail threshold"):
            DegradedServingSimulator(
                model,
                BatchingPolicy.fifo(),
                FaultSchedule.none(),
                fail_error_threshold=0.0,
            )
        network = serving_network("lenet5")
        arrivals = poisson_arrivals(2e4, 20, seed=2)
        horizon = float(arrivals[-1])
        report = simulate_degraded_serving(
            network,
            arrivals,
            BatchingPolicy.dynamic(4, 1e-4),
            FaultSchedule.uniform_drift(0.3 / horizon, 2),
            num_cores=2,
            recalibration=RecalibrationPolicy(),
        )
        text = report.describe()
        assert "accuracy proxy" in text
        assert "availability" in text
        assert "recalibrations" in text
        assert report.worst_accuracy_proxy >= report.accuracy_proxy[0]
        assert report.final_accuracy_proxy == report.accuracy_proxy[-1]


class TestFaultToleranceSweep:
    def test_grid_rows_and_validation(self):
        specs = alexnet_conv_specs()
        arrivals = poisson_arrivals(4000.0, 300, seed=1)
        horizon = float(arrivals[-1])
        points = sweep_fault_tolerance(
            specs,
            BatchingPolicy.dynamic(8, 1e-3),
            [0.05 / horizon],
            [None, RecalibrationPolicy()],
            arrivals,
            num_cores=2,
        )
        assert len(points) == 2
        assert {point.recalibration for point in points} == {"none", "recal"}
        for point in points:
            assert len(point.row()) == len(FAULT_SWEEP_HEADER)
            assert 0.0 < point.min_availability <= 1.0
            assert point.mean_accuracy_proxy >= 0.0
        with pytest.raises(ValueError, match="drift rate"):
            sweep_fault_tolerance(
                specs,
                BatchingPolicy.fifo(),
                [],
                [None],
                arrivals,
                num_cores=2,
            )
        with pytest.raises(ValueError, match="recalibration"):
            sweep_fault_tolerance(
                specs,
                BatchingPolicy.fifo(),
                [1.0],
                [],
                arrivals,
                num_cores=2,
            )
