"""Tests for the power/energy and area roll-ups."""

import pytest

from repro.core.area import estimate_layer_area, network_max_area_mm2
from repro.core.config import PCNNAConfig
from repro.core.power import (
    estimate_layer_power,
    estimate_network_energy_j,
)
from repro.workloads import alexnet_conv_specs, alexnet_layer


class TestPower:
    def test_components_positive(self):
        report = estimate_layer_power(alexnet_layer("conv3"))
        assert report.laser_w > 0
        assert report.tuning_w > 0
        assert report.dac_w > 0
        assert report.adc_w > 0
        assert report.sram_w > 0
        assert report.receiver_w > 0

    def test_total_is_sum(self):
        report = estimate_layer_power(alexnet_layer("conv3"))
        assert report.total_power_w == pytest.approx(
            report.laser_w
            + report.tuning_w
            + report.dac_w
            + report.adc_w
            + report.sram_w
            + report.receiver_w
        )

    def test_paper_dac_power(self):
        # 10 input DACs + 1 weight DAC at 330 mW each.
        report = estimate_layer_power(alexnet_layer("conv1"))
        assert report.dac_w == pytest.approx(11 * 0.330)

    def test_energy_includes_dram(self):
        report = estimate_layer_power(alexnet_layer("conv5"))
        assert report.layer_energy_j > report.total_power_w * report.layer_time_s

    def test_tuning_power_scales_with_banks(self):
        conv4 = estimate_layer_power(alexnet_layer("conv4"))
        conv5 = estimate_layer_power(alexnet_layer("conv5"))
        # conv4 has 384 banks vs conv5's 256, same rings per bank.
        assert conv4.tuning_w > conv5.tuning_w

    def test_bank_cap_reduces_tuning_power(self):
        spec = alexnet_layer("conv4")
        capped = PCNNAConfig(max_parallel_kernels=64)
        assert (
            estimate_layer_power(spec, capped).tuning_w
            < estimate_layer_power(spec).tuning_w
        )

    def test_energy_per_mac_positive(self):
        report = estimate_layer_power(alexnet_layer("conv2"))
        assert report.energy_per_mac_j > 0

    def test_network_energy_sums(self):
        specs = alexnet_conv_specs()
        total = estimate_network_energy_j(specs)
        assert total == pytest.approx(
            sum(estimate_layer_power(s).layer_energy_j for s in specs)
        )


class TestArea:
    def test_conv4_ring_area_dominated_by_banks(self):
        report = estimate_layer_area(alexnet_layer("conv4"))
        # 384 banks x 3456 rings x (25 um)^2 ~ 829 mm^2.
        assert report.rings_mm2 == pytest.approx(829.0, rel=0.01)
        assert report.rings_per_bank == 3456
        assert report.num_banks == 384

    def test_single_bank_area_is_paper_number(self):
        spec = alexnet_layer("conv4")
        config = PCNNAConfig(max_parallel_kernels=1)
        report = estimate_layer_area(spec, config)
        assert report.rings_mm2 == pytest.approx(2.16, rel=0.01)

    def test_periphery_areas(self):
        report = estimate_layer_area(alexnet_layer("conv1"))
        assert report.dac_mm2 == pytest.approx(11 * 0.52)
        assert report.sram_mm2 == pytest.approx(0.443)

    def test_total_is_sum(self):
        report = estimate_layer_area(alexnet_layer("conv2"))
        assert report.total_mm2 == pytest.approx(
            report.rings_mm2 + report.dac_mm2 + report.adc_mm2 + report.sram_mm2
        )

    def test_network_max_area_takes_largest(self):
        specs = alexnet_conv_specs()
        largest = max(estimate_layer_area(s).total_mm2 for s in specs)
        assert network_max_area_mm2(specs) == pytest.approx(largest)

    def test_bank_cap_shrinks_area(self):
        spec = alexnet_layer("conv4")
        capped = PCNNAConfig(max_parallel_kernels=32)
        assert (
            estimate_layer_area(spec, capped).total_mm2
            < estimate_layer_area(spec).total_mm2
        )
