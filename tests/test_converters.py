"""Tests for DAC/ADC converter specs and arrays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.electronics.adc import AdcArray
from repro.electronics.converters import (
    PCNNA_INPUT_DAC,
    PCNNA_OUTPUT_ADC,
    PCNNA_WEIGHT_DAC,
    ConverterSpec,
)
from repro.electronics.dac import DacArray


class TestConverterSpec:
    def test_paper_dac_parameters(self):
        assert PCNNA_INPUT_DAC.resolution_bits == 16
        assert PCNNA_INPUT_DAC.sample_rate_hz == pytest.approx(6e9)
        assert PCNNA_INPUT_DAC.area_mm2 == pytest.approx(0.52)

    def test_paper_adc_parameters(self):
        assert PCNNA_OUTPUT_ADC.sample_rate_hz == pytest.approx(2.8e9)

    def test_weight_dac_bipolar(self):
        assert PCNNA_WEIGHT_DAC.full_scale_min == -1.0
        assert PCNNA_WEIGHT_DAC.full_scale_max == 1.0

    def test_num_levels(self):
        spec = ConverterSpec(resolution_bits=8, sample_rate_hz=1e9)
        assert spec.num_levels == 256

    def test_lsb(self):
        spec = ConverterSpec(
            resolution_bits=2, sample_rate_hz=1e9, full_scale_max=3.0
        )
        assert spec.lsb == pytest.approx(1.0)

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            ConverterSpec(resolution_bits=0, sample_rate_hz=1e9)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ConverterSpec(resolution_bits=8, sample_rate_hz=0.0)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            ConverterSpec(
                resolution_bits=8,
                sample_rate_hz=1e9,
                full_scale_min=1.0,
                full_scale_max=1.0,
            )

    def test_conversion_time(self):
        spec = ConverterSpec(resolution_bits=8, sample_rate_hz=1e9)
        assert spec.conversion_time_s(100) == pytest.approx(100e-9)

    def test_conversion_time_rejects_negative(self):
        with pytest.raises(ValueError):
            PCNNA_INPUT_DAC.conversion_time_s(-1)


class TestQuantization:
    def test_quantize_idempotent(self):
        spec = ConverterSpec(resolution_bits=6, sample_rate_hz=1e9)
        values = np.random.default_rng(0).uniform(0, 1, 100)
        once = spec.quantize(values)
        assert np.array_equal(spec.quantize(once), once)

    def test_quantize_error_bounded_by_half_lsb(self):
        spec = ConverterSpec(resolution_bits=8, sample_rate_hz=1e9)
        values = np.random.default_rng(1).uniform(0, 1, 1000)
        error = np.abs(spec.quantize(values) - values)
        assert np.max(error) <= spec.lsb / 2 + 1e-12

    def test_quantize_clips_out_of_range(self):
        spec = ConverterSpec(resolution_bits=8, sample_rate_hz=1e9)
        assert spec.quantize(np.array([2.0]))[0] == pytest.approx(1.0)
        assert spec.quantize(np.array([-1.0]))[0] == pytest.approx(0.0)

    @given(value=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_roundtrip(self, value):
        spec = ConverterSpec(resolution_bits=12, sample_rate_hz=1e9)
        code = spec.encode(value)
        decoded = spec.decode(code)
        assert float(decoded) == pytest.approx(value, abs=spec.lsb / 2 + 1e-12)

    def test_decode_rejects_out_of_range_codes(self):
        spec = ConverterSpec(resolution_bits=4, sample_rate_hz=1e9)
        with pytest.raises(ValueError):
            spec.decode(np.array([16]))
        with pytest.raises(ValueError):
            spec.decode(np.array([-1]))

    def test_sixteen_bit_quantization_fine(self):
        error = np.abs(
            PCNNA_INPUT_DAC.quantize(np.array([0.123456789])) - 0.123456789
        )
        assert error[0] < 1e-4


class TestDacArray:
    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            DacArray(0)

    def test_schedule_divides_work(self):
        array = DacArray(10)
        conversion = array.schedule(100)
        assert conversion.per_dac_values == 10
        assert conversion.time_s == pytest.approx(10 / 6e9)

    def test_schedule_ceils(self):
        array = DacArray(10)
        assert array.schedule(101).per_dac_values == 11

    def test_schedule_zero_values(self):
        assert DacArray(4).schedule(0).time_s == 0.0

    def test_schedule_rejects_negative(self):
        with pytest.raises(ValueError):
            DacArray(4).schedule(-1)

    def test_average_time_matches_eq8(self):
        # Paper eq. 8: conv4, 384*3*1 values over 10 DACs at 6 GSa/s.
        array = DacArray(10)
        time_s = array.average_conversion_time_s(384 * 3 * 1)
        assert time_s == pytest.approx(115.2 / 6e9)

    def test_totals(self):
        array = DacArray(10)
        assert array.total_area_mm2 == pytest.approx(5.2)
        assert array.aggregate_rate_hz == pytest.approx(60e9)

    def test_convert_quantizes(self):
        array = DacArray(2)
        values = np.array([0.5, 0.25])
        assert np.allclose(array.convert(values), values, atol=array.spec.lsb)


class TestAdcArray:
    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            AdcArray(0)

    def test_schedule(self):
        array = AdcArray(1)
        conversion = array.schedule(384)
        assert conversion.per_adc_values == 384
        assert conversion.time_s == pytest.approx(384 / 2.8e9)

    def test_parallel_adcs_divide(self):
        assert AdcArray(4).schedule(384).per_adc_values == 96

    def test_schedule_rejects_negative(self):
        with pytest.raises(ValueError):
            AdcArray(1).schedule(-5)

    def test_digitize_quantizes_into_range(self):
        array = AdcArray(1)
        values = np.array([-2.0, 0.3, 2.0])
        digitized = array.digitize(values)
        assert digitized[0] == pytest.approx(-1.0)
        assert digitized[2] == pytest.approx(1.0)
