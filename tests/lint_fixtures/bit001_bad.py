"""BIT001 positive fixture: unjustified folds under the marker."""

import numpy as np

__bit_identity__ = True


def fold_builtin(values):
    return sum(values)  # EXPECT: BIT001


def fold_numpy(array):
    return np.sum(array)  # EXPECT: BIT001


def fold_method(array):
    return array.sum()  # EXPECT: BIT001
