"""Pragma fixture: trailing and comment-block waivers, all earning keep.

Expected to lint completely clean — every finding in here is waived by
a justified pragma, and every pragma suppresses something (no LINT002).
"""

import time

__bit_identity__ = True


def measure_and_fold(values):
    started = time.perf_counter()  # repro: allow[DET002] fixture: wall time is observability only
    # repro: allow[BIT001] strict left fold over the caller's fixed
    # argument order; identical recipe in every mode
    total = sum(values)
    return started, total
