# API001 positive fixture: a package __init__ with public bindings but
# no declared export surface.
# EXPECT-FILE: API001@1


def helper():
    return 1
