"""DET001 negative fixture: sanctioned, seeded randomness only."""

import random

import numpy as np
from numpy.random import default_rng


def draw_seeded():
    return np.random.default_rng(42).normal()


def draw_keyword_seeded():
    return default_rng(seed=7).normal()


def draw_bit_generator():
    return np.random.Generator(np.random.Philox(1)).normal()


def draw_stdlib_seeded():
    return random.Random(3).random()
