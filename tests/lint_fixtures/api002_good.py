"""API002 negative fixture: determinism injected by the caller."""

import numpy as np


def simulate_queue(num_requests, seed):
    rng = np.random.default_rng(seed)
    return rng.random(num_requests)


def sweep_shared_trace(points, arrival_times_s):
    return [point + arrival_times_s[0] for point in points]


# repro: allow[API002] fixture: closed-form analytical model, nothing
# stochastic to seed
def simulate_closed_form(num_requests):
    return num_requests * 2.0


class Engine:
    def simulate_run(self, rng):
        return rng.random()


class _PrivateHelper:
    def simulate_internal(self):
        return 0
