"""DET003 positive fixture: hash-ordered set iteration leaks out."""

CHANNELS = {"ch0", "ch1", "ch2"}
WEIGHTS = frozenset({0.25, 0.5})
COMBINED = CHANNELS | {"ch3"}


def fold_channels():
    return sum({1.0, 2.0, 4.0})  # EXPECT: DET003


def walk_channels():
    names = []
    for name in CHANNELS:  # EXPECT: DET003
        names.append(name)
    return names


def expand_combined():
    return [name.upper() for name in COMBINED]  # EXPECT: DET003


def materialize_weights():
    return list(WEIGHTS)  # EXPECT: DET003
