"""DET002 exemption fixture: wall timing is the point of benchmarks/."""

import time


def measure(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
