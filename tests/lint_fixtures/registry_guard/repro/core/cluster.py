# Registry-guard fixture: a module at a pinned path that dropped both
# its `__bit_identity__` marker and its `__hot_path__` declaration.
# The central registries must flag the deletions themselves.
# EXPECT-FILE: BIT001@1
# EXPECT-FILE: PERF001@1

ROUTING_KINDS = ("round_robin",)
