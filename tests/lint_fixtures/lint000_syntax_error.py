# LINT000 fixture: a file that does not parse at all.
# EXPECT-FILE: LINT000@*
def broken(:
    pass
