"""PERF001 negative fixture: both sanctioned __slots__ spellings."""

from dataclasses import dataclass

__hot_path__ = ("Packed", "Row")


class Packed:
    """Explicit class-body tuple."""

    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b


@dataclass(frozen=True, slots=True)
class Row:
    """Dataclass slots keyword."""

    index: int


class ColdPath:
    """Not declared hot: an instance dict is fine here."""

    def __init__(self):
        self.notes = {}
