"""API001 positive fixture: a computed ``__all__`` is unauditable."""

_NAMES = ["real"]


def real():
    return 1


__all__ = sorted(_NAMES)  # EXPECT: API001
