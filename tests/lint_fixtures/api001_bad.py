"""API001 positive fixture: duplicate and unbound ``__all__`` entries."""


def real():
    return 1


__all__ = ["real", "real", "ghost"]  # EXPECT: API001,API001
