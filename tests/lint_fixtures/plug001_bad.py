"""PLUG001 fixture: typo'd hook overrides silently never run.

Defines its own ``KernelPlugin`` base so the fixture project carries a
hook vocabulary (on_run_start, on_batch_complete, on_run_end) without
importing the real kernel.
"""


class KernelPlugin:
    def on_run_start(self, context):
        pass

    def on_batch_complete(self, context):
        pass

    def on_run_end(self, context):
        pass


class TypoPlugin(KernelPlugin):
    def on_batch_completed(self, context):  # EXPECT: PLUG001
        pass

    def on_runstart(self, context):  # EXPECT: PLUG001
        pass

    def on_run_end(self, context):
        pass

    def helper_method(self):
        pass
