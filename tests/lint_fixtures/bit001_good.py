"""BIT001 negative fixture: justified or order-insensitive folds."""

import math

__bit_identity__ = True


def fold_exact(values):
    return math.fsum(values)


def fold_justified(values):
    # repro: allow[BIT001] strict left fold over the caller's fixed
    # argument order; identical in every mode
    return sum(values)


def fold_trailing(values):
    return sum(values)  # repro: allow[BIT001] fixture: pinned left fold
