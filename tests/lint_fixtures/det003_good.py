"""DET003 negative fixture: sorted() pins the order before any fold."""

CHANNELS = {"ch0", "ch1", "ch2"}


def fold_channels():
    return sum(sorted({1.0, 2.0, 4.0}))


def walk_channels():
    names = []
    for name in sorted(CHANNELS):
        names.append(name)
    return names


def membership_is_fine(name):
    return name in CHANNELS


def fold_a_list():
    return sum([1.0, 2.0, 4.0])
