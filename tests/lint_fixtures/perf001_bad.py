# PERF001 positive fixture: a declared hot-path class without
# __slots__, and a declaration pointing at a class that is gone.
# EXPECT-FILE: PERF001@1

__hot_path__ = ("EventRecord", "Ghost")


class EventRecord:  # EXPECT: PERF001
    def __init__(self):
        self.payload = 0
