# LINT002 fixture: a justified pragma whose violation is gone.
# EXPECT-FILE: LINT002@3
sample_count = 1  # repro: allow[DET001] the draw this waived was removed
