"""DET001 positive fixture: every banned randomness entry point."""

import random

import numpy as np


def draw_legacy():
    return np.random.rand(4)  # EXPECT: DET001


def draw_unseeded():
    return np.random.default_rng()  # EXPECT: DET001


def draw_explicit_none():
    return np.random.default_rng(seed=None)  # EXPECT: DET001


def draw_stdlib():
    return random.random()  # EXPECT: DET001


def draw_stdlib_instance():
    return random.Random()  # EXPECT: DET001
