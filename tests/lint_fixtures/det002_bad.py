"""DET002 positive fixture: wall-clock reads outside benchmarks/."""

import time
from datetime import datetime


def stamp():
    started = time.perf_counter()  # EXPECT: DET002
    now = datetime.now()  # EXPECT: DET002
    return started, now, time.monotonic()  # EXPECT: DET002
