"""Source module for the re-export consistency fixtures."""


def shown():
    return 1


hidden = 3

__all__ = ["shown"]
