"""API001 positive fixture: re-exporting a name its source hides."""

from api001_reexport.source_mod import hidden  # EXPECT: API001
from api001_reexport.source_mod import shown

__all__ = ["hidden", "shown"]
