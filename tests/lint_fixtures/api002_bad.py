"""API002 positive fixture: entry points the caller cannot replay."""


def simulate_queue(num_requests):  # EXPECT: API002
    return [float(i) for i in range(num_requests)]


def sweep_load(points, seed):  # EXPECT: API002
    return [point * 2.0 for point in points]


class Engine:
    def simulate_run(self, num_requests):  # EXPECT: API002
        return num_requests
