# LINT001 fixture: malformed pragmas (missing justification on line 6,
# unknown rule code on line 7; the unknown-code pragma is also unused,
# hence the extra LINT002).
# EXPECT-FILE: LINT001@6
# EXPECT-FILE: LINT001@7
total = 0.0  # repro: allow[BIT001]
count = 1  # repro: allow[NOPE999] there is no such rule
# EXPECT-FILE: LINT002@7
