"""Tests for waveguide, splitter and cascade loss models."""

import numpy as np
import pytest

from repro.photonics.waveguide import Splitter, Waveguide, cascade_transmission


class TestWaveguide:
    def test_zero_length_is_lossless(self):
        assert Waveguide(length_m=0.0).transmission == pytest.approx(1.0)

    def test_loss_db_accumulates_with_length(self):
        wg = Waveguide(length_m=0.01, loss_db_per_cm=2.0)  # 1 cm.
        assert wg.loss_db == pytest.approx(2.0)

    def test_transmission_from_db(self):
        wg = Waveguide(length_m=0.05, loss_db_per_cm=2.0)  # 10 dB total.
        assert wg.transmission == pytest.approx(0.1)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            Waveguide(length_m=-1.0)

    def test_rejects_negative_loss(self):
        with pytest.raises(ValueError):
            Waveguide(length_m=1.0, loss_db_per_cm=-0.1)

    def test_propagate_scales_vector(self):
        wg = Waveguide(length_m=0.05, loss_db_per_cm=2.0)
        powers = np.array([1.0, 2.0, 0.0])
        assert np.allclose(wg.propagate(powers), powers * 0.1)

    def test_transmission_bounded(self):
        wg = Waveguide(length_m=10.0, loss_db_per_cm=3.0)
        assert 0.0 < wg.transmission < 1.0


class TestSplitter:
    def test_ideal_split_conserves_power(self):
        splitter = Splitter(num_outputs=4)
        powers = np.array([1.0, 2.0])
        branches = splitter.split(powers)
        assert len(branches) == 4
        total = sum(branch.sum() for branch in branches)
        assert total == pytest.approx(powers.sum())

    def test_per_output_share(self):
        assert Splitter(5).per_output_transmission == pytest.approx(0.2)

    def test_excess_loss_reduces_share(self):
        lossy = Splitter(2, excess_loss_db=3.0)
        assert lossy.per_output_transmission == pytest.approx(0.25, rel=2e-2)

    def test_rejects_nonpositive_outputs(self):
        with pytest.raises(ValueError):
            Splitter(0)

    def test_rejects_negative_excess_loss(self):
        with pytest.raises(ValueError):
            Splitter(2, excess_loss_db=-1.0)

    def test_single_output_passthrough(self):
        splitter = Splitter(1)
        powers = np.array([0.7])
        assert np.allclose(splitter.split(powers)[0], powers)


class TestCascade:
    def test_multiplies(self):
        assert cascade_transmission(0.5, 0.5, 0.8) == pytest.approx(0.2)

    def test_empty_cascade_is_unity(self):
        assert cascade_transmission() == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            cascade_transmission(0.5, 1.2)
        with pytest.raises(ValueError):
            cascade_transmission(-0.1)
