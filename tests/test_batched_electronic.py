"""Tests for the batch-native electronic layer path.

The contract (see ``docs/architecture.md``): every electronic layer —
and the whole network execution built on them — processes a minibatch in
single array operations whose results are *bit-identical*
(``np.array_equal``, atol=0) to stacking the per-image results, across
odd strides, paddings, and batch sizes 1/2/7.  Also covers the two
reproducibility bugfixes that ride along: per-image quantized AGC and
the per-call noise-RNG fork.
"""

import numpy as np
import pytest

from repro.core.accelerator import PCNNA, PhotonicConvolution
from repro.core.config import PCNNAConfig
from repro.nn import build_lenet5, functional as F
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.network import Network
from repro.nn.shapes import pool_output_size
from repro.photonics.noise import realistic

BATCH_SIZES = (1, 2, 7)


def _batch(shape, seed):
    return np.random.default_rng(seed).normal(size=shape)


class TestFunctionalBatchEquality:
    """Each functional op: batched == np.stack(per-image), bit-for-bit."""

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize(
        ("pool", "stride"), [(2, None), (3, 1), (3, 2), (3, 3), (2, 5)]
    )
    def test_max_pool2d(self, batch, pool, stride):
        x = _batch((batch, 5, 13, 11), seed=batch)
        batched = F.max_pool2d(x, pool, stride)
        stacked = np.stack([F.max_pool2d(image, pool, stride) for image in x])
        assert np.array_equal(batched, stacked)

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("size", [1, 3, 4, 5, 9])
    def test_local_response_norm(self, batch, size):
        x = _batch((batch, 8, 6, 7), seed=size)
        batched = F.local_response_norm(x, size=size)
        stacked = np.stack(
            [F.local_response_norm(image, size=size) for image in x]
        )
        assert np.array_equal(batched, stacked)

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_linear(self, batch):
        x = _batch((batch, 29), seed=batch)
        weights = _batch((13, 29), seed=100)
        bias = _batch((13,), seed=101)
        batched = F.linear(x, weights, bias)
        stacked = np.stack([F.linear(v, weights, bias) for v in x])
        assert np.array_equal(batched, stacked)

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize(("stride", "padding"), [(1, 0), (2, 1), (3, 2)])
    def test_conv2d_batch(self, batch, stride, padding):
        x = _batch((batch, 3, 9, 8), seed=batch)
        kernels = _batch((4, 3, 3, 3), seed=102)
        bias = _batch((4,), seed=103)
        batched = F.conv2d_batch(x, kernels, stride, padding, bias)
        stacked = np.stack(
            [F.conv2d(image, kernels, stride, padding, bias) for image in x]
        )
        assert np.array_equal(batched, stacked)

    def test_relu_and_softmax_batched(self):
        x = _batch((7, 4, 5), seed=0)
        assert np.array_equal(
            F.relu(x), np.stack([F.relu(image) for image in x])
        )
        logits = _batch((7, 10), seed=1)
        assert np.array_equal(
            F.softmax(logits), np.stack([F.softmax(row) for row in logits])
        )


class TestLayerForwardBatch:
    """Layer.forward_batch == np.stack(per-image forward), bit-for-bit."""

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_every_builtin_layer(self, batch):
        rng = np.random.default_rng(batch)
        layers_and_inputs = [
            (
                Conv2D(rng.normal(size=(4, 3, 3, 3)), stride=2, padding=1),
                (batch, 3, 9, 9),
            ),
            (ReLU(), (batch, 3, 8, 8)),
            (MaxPool2D(3, stride=2), (batch, 3, 9, 9)),
            (LocalResponseNorm(), (batch, 8, 5, 5)),
            (Flatten(), (batch, 3, 4, 5)),
            (Dense(rng.normal(size=(6, 30)), rng.normal(size=6)), (batch, 30)),
            (Softmax(), (batch, 10)),
        ]
        for layer, shape in layers_and_inputs:
            x = rng.normal(size=shape)
            batched = layer.forward_batch(x)
            stacked = np.stack([layer.forward(image) for image in x])
            assert np.array_equal(batched, stacked), type(layer).__name__

    def test_rank_dispatch_in_forward(self):
        rng = np.random.default_rng(0)
        conv = Conv2D(rng.normal(size=(2, 3, 3, 3)))
        x = rng.normal(size=(4, 3, 8, 8))
        assert np.array_equal(conv.forward(x), conv.forward_batch(x))
        dense = Dense(rng.normal(size=(5, 9)))
        v = rng.normal(size=(4, 9))
        assert np.array_equal(dense.forward(v), dense.forward_batch(v))

    def test_custom_layer_falls_back_to_stacking(self):
        from repro.nn.layers import Layer

        class Shift(Layer):
            name = "shift"

            def forward(self, inputs):
                return inputs + 1.0

            def output_shape(self, input_shape):
                return input_shape

        layer = Shift()
        x = np.arange(24.0).reshape(2, 3, 4)
        # Base-class fallback stacks per-image forward results.
        assert np.array_equal(
            layer.forward_batch(x),
            np.stack([layer.forward(image) for image in x]),
        )


class TestNetworkForwardBatch:
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_lenet_bit_identical(self, batch):
        net = build_lenet5(seed=1)
        x = _batch((batch, 1, 32, 32), seed=batch)
        assert np.array_equal(
            net.forward_batch(x), np.stack([net.forward(image) for image in x])
        )

    def test_network_with_lrn_padding_odd_strides(self):
        rng = np.random.default_rng(2)
        net = Network(
            [
                Conv2D(rng.normal(size=(6, 2, 3, 3)), stride=2, padding=2),
                ReLU(),
                LocalResponseNorm(size=3),
                MaxPool2D(3, stride=3),
                Conv2D(rng.normal(size=(4, 6, 1, 1))),
                Flatten(),
                Dense(rng.normal(size=(5, 36)), rng.normal(size=5)),
                Softmax(),
            ],
            input_shape=(2, 17, 17),
        )
        x = rng.normal(size=(7, 2, 17, 17))
        assert np.array_equal(
            net.forward_batch(x), np.stack([net.forward(image) for image in x])
        )

    def test_forward_batch_shape_check(self):
        net = build_lenet5()
        with pytest.raises(ValueError, match="batched input shape"):
            net.forward_batch(np.zeros((2, 1, 30, 30)))
        with pytest.raises(ValueError, match="batched input shape"):
            net.forward_batch(np.zeros((1, 32, 32)))


class TestRunNetworkBatched:
    """The acceptance contract: batched run_network is bit-identical to
    per-image execution in ideal mode."""

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_lenet_bit_identical(self, batch):
        net = build_lenet5(seed=2)
        accelerator = PCNNA()
        x = _batch((batch, 1, 32, 32), seed=batch + 10)
        batched = accelerator.run_network(net, x)
        per_image = np.stack(
            [accelerator.run_network(net, image) for image in x]
        )
        assert np.array_equal(batched, per_image)

    def test_photonic_conv_with_padding_bit_identical(self):
        rng = np.random.default_rng(3)
        net = Network(
            [
                Conv2D(
                    rng.normal(size=(3, 2, 3, 3)),
                    stride=2,
                    padding=2,
                    bias=rng.normal(size=3),
                ),
                ReLU(),
                LocalResponseNorm(),
                MaxPool2D(2),
            ],
            input_shape=(2, 11, 11),
        )
        accelerator = PCNNA()
        x = rng.normal(size=(7, 2, 11, 11))
        batched = accelerator.run_network(net, x)
        per_image = np.stack(
            [accelerator.run_network(net, image) for image in x]
        )
        assert np.array_equal(batched, per_image)


class TestQuantizedAgcRegression:
    """Bugfix: the TIA gain is per image, so a quantized image's output
    cannot depend on which other images share its minibatch."""

    @pytest.mark.parametrize("mode", ["vectorized", "reference"])
    def test_quantized_batched_equals_single(self, mode):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(5, 2, 9, 9))
        kernels = rng.normal(size=(3, 2, 3, 3))
        engine = PhotonicConvolution(method="device", quantize=True, mode=mode)
        batched = engine.convolve(x, kernels, 2, 1)
        singles = np.stack(
            [engine.convolve(image, kernels, 2, 1) for image in x]
        )
        assert np.array_equal(batched, singles)

    def test_quantized_output_independent_of_batch_neighbours(self):
        rng = np.random.default_rng(5)
        image = rng.normal(size=(2, 8, 8))
        outlier = 50.0 * rng.normal(size=(2, 8, 8))
        kernels = rng.normal(size=(3, 2, 3, 3))
        engine = PhotonicConvolution(method="device", quantize=True)
        alone = engine.convolve(image[None], kernels)[0]
        with_outlier = engine.convolve(np.stack([image, outlier]), kernels)[0]
        assert np.array_equal(alone, with_outlier)


class TestNoiseForkRegression:
    """Bugfix: identical noisy calls on one engine give identical results."""

    def test_identical_noisy_convolve_calls_match(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 2, 7, 7))
        kernels = rng.normal(size=(3, 2, 3, 3))
        config = PCNNAConfig(noise=realistic(seed=7))
        for mode in ("vectorized", "reference"):
            engine = PhotonicConvolution(config, method="device", mode=mode)
            first = engine.convolve(x, kernels)
            second = engine.convolve(x, kernels)
            assert np.array_equal(first, second), mode

    def test_noisy_runs_still_differ_by_seed(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(1, 6, 6))
        kernels = rng.normal(size=(2, 1, 3, 3))
        out = []
        for seed in (0, 1):
            engine = PhotonicConvolution(
                PCNNAConfig(noise=realistic(seed=seed)), method="device"
            )
            out.append(engine.convolve(x, kernels))
        assert not np.array_equal(out[0], out[1])


class TestPoolValidationUnification:
    """Bugfix: one geometry helper serves the functional op and the layer
    shape inference, so their checks and messages cannot diverge."""

    def test_functional_and_layer_raise_identical_messages(self):
        layer = MaxPool2D(5, stride=2)
        with pytest.raises(ValueError) as layer_error:
            layer.output_shape((1, 3, 3))
        with pytest.raises(ValueError) as functional_error:
            F.max_pool2d(np.zeros((1, 3, 3)), 5, 2)
        assert str(layer_error.value) == str(functional_error.value)

    def test_batched_inputs_get_the_same_message(self):
        with pytest.raises(ValueError) as single_error:
            F.max_pool2d(np.zeros((1, 3, 3)), 5)
        with pytest.raises(ValueError) as batch_error:
            F.max_pool2d(np.zeros((4, 1, 3, 3)), 5)
        assert str(single_error.value) == str(batch_error.value)

    def test_helper_contract(self):
        assert pool_output_size(55, 3, 2) == 27
        with pytest.raises(ValueError, match="pool size must be positive"):
            pool_output_size(8, 0, 1)
        with pytest.raises(ValueError, match="stride must be positive"):
            pool_output_size(8, 2, 0)
        with pytest.raises(ValueError, match="does not fit"):
            pool_output_size(2, 3, 1)

    def test_shape_inference_matches_forward(self):
        layer = MaxPool2D(3, stride=2)
        x = np.zeros((4, 2, 9, 11))
        assert layer.forward_batch(x).shape[1:] == layer.output_shape((2, 9, 11))
