"""Tests for the planet-scale fleet serving layer."""

import math

import numpy as np
import pytest

from repro.analysis import FLEET_SWEEP_HEADER, sweep_fleet_serving
from repro.core.cluster import (
    ClusterTenant,
    ElasticReallocation,
    RoutingPolicy,
    simulate_cluster_serving,
)
from repro.core.faults import FaultEvent, FaultSchedule
from repro.core.fleet import (
    FLEET_ROUTING_KINDS,
    FleetAutoscaler,
    FleetRuntime,
    GlobalRoutingPolicy,
    RegionSpec,
    estimate_region_capacity_rps,
    simulate_fleet_serving,
    uniform_rtt,
    validate_rtt_matrix,
)
from repro.core.simkernel import BatchingPolicy
from repro.workloads import (
    FLEET_MIXES,
    fleet_mix,
    lenet5_conv_specs,
    poisson_arrivals,
)

LENET = tuple(lenet5_conv_specs())


def tenant(name, policy=None, **kwargs) -> ClusterTenant:
    policy = policy if policy is not None else BatchingPolicy.dynamic(8, 1e-3)
    return ClusterTenant(name, LENET, policy, **kwargs)


def two_tenants():
    return (
        tenant("interactive", BatchingPolicy.dynamic(4, 1e-4), weight=2.0),
        tenant("batch", BatchingPolicy.fixed(4), queue_cap=16),
    )


def traces(num=300, rate=4000.0, seed=0):
    return {
        "interactive": poisson_arrivals(0.7 * rate, int(0.7 * num), seed=seed),
        "batch": poisson_arrivals(0.3 * rate, int(0.3 * num), seed=seed + 1),
    }


def outage_schedule(onset_s, duration_s, num_cores=6, magnitude=0.9):
    return FaultSchedule(
        name="outage",
        events=tuple(
            FaultEvent(
                kind="tia_droop",
                core=core,
                onset_s=onset_s,
                magnitude=magnitude,
                duration_s=duration_s,
            )
            for core in range(num_cores)
        ),
    )


class TestFleetConfigValidation:
    def test_zero_region_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one region"):
            FleetRuntime(two_tenants(), [])

    def test_duplicate_region_names_rejected(self):
        with pytest.raises(ValueError, match="region names must be unique"):
            FleetRuntime(
                two_tenants(), [RegionSpec("r", 4), RegionSpec("r", 6)]
            )

    def test_empty_and_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            FleetRuntime((), [RegionSpec("r", 4)])
        with pytest.raises(ValueError, match="tenant names must be unique"):
            FleetRuntime(
                (tenant("t"), tenant("t")), [RegionSpec("r", 4)]
            )

    def test_region_spec_validation(self):
        with pytest.raises(ValueError, match="name"):
            RegionSpec("", 4)
        with pytest.raises(ValueError, match="pool size"):
            RegionSpec("r", 0)

    def test_pool_too_small_for_tenants_rejected(self):
        with pytest.raises(ValueError, match="cannot host"):
            FleetRuntime(two_tenants(), [RegionSpec("r", 1)])

    def test_rtt_matrix_validation(self):
        with pytest.raises(ValueError, match="square"):
            validate_rtt_matrix(np.zeros((2, 3)), 2)
        with pytest.raises(ValueError, match="square"):
            validate_rtt_matrix(np.zeros((3, 3)), 2)
        with pytest.raises(ValueError, match=">= 0"):
            validate_rtt_matrix(np.array([[0.0, -0.1], [0.1, 0.0]]), 2)
        with pytest.raises(ValueError, match="finite"):
            validate_rtt_matrix(
                np.array([[0.0, np.inf], [0.1, 0.0]]), 2
            )
        with pytest.raises(ValueError, match="diagonal"):
            validate_rtt_matrix(np.array([[0.5, 0.1], [0.1, 0.0]]), 2)
        assert np.array_equal(
            validate_rtt_matrix(None, 2), np.zeros((2, 2))
        )

    def test_uniform_rtt_validation(self):
        with pytest.raises(ValueError, match="region"):
            uniform_rtt(0, 0.01)
        with pytest.raises(ValueError, match="RTT"):
            uniform_rtt(2, -0.01)
        matrix = uniform_rtt(3, 0.02)
        assert np.all(np.diagonal(matrix) == 0.0)
        assert matrix[0, 1] == 0.02

    def test_autoscaler_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="bounds inverted"):
            FleetAutoscaler(epoch_s=1.0, min_pools=3, max_pools=2)

    def test_autoscaler_parameter_validation(self):
        with pytest.raises(ValueError, match="epoch"):
            FleetAutoscaler(epoch_s=0.0)
        with pytest.raises(ValueError, match="burn-down"):
            FleetAutoscaler(epoch_s=1.0, burn_down=0.0)
        with pytest.raises(ValueError, match="burn-up"):
            FleetAutoscaler(epoch_s=1.0, burn_up=0.1, burn_down=0.2)
        with pytest.raises(ValueError, match="warm-up"):
            FleetAutoscaler(epoch_s=1.0, warmup_s=-1.0)
        with pytest.raises(ValueError, match="min pools"):
            FleetAutoscaler(epoch_s=1.0, min_pools=0)

    def test_autoscaler_min_pools_above_region_count_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            FleetRuntime(
                two_tenants(),
                [RegionSpec("r", 4)],
                autoscaler=FleetAutoscaler(epoch_s=1.0, min_pools=2),
            )

    def test_routing_policy_validation(self):
        with pytest.raises(ValueError, match="routing kind"):
            GlobalRoutingPolicy(kind="random")
        with pytest.raises(ValueError, match="threshold"):
            GlobalRoutingPolicy(failover_threshold=0.0)
        for kind in FLEET_ROUTING_KINDS:
            assert GlobalRoutingPolicy(kind=kind).kind == kind

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="kernel mode"):
            FleetRuntime(
                two_tenants(), [RegionSpec("r", 4)], mode="warp"
            )

    def test_run_trace_validation(self):
        runtime = FleetRuntime(
            two_tenants(), [RegionSpec("r0", 4), RegionSpec("r1", 4)]
        )
        with pytest.raises(ValueError, match="per region"):
            runtime.run({"r0": traces()})
        with pytest.raises(ValueError, match="unknown tenant"):
            runtime.run(
                {"r0": {"ghost": poisson_arrivals(1e3, 10)}, "r1": {}}
            )
        with pytest.raises(ValueError, match="no requests"):
            runtime.run({"r0": {}, "r1": {}})
        with pytest.raises(ValueError, match="sorted"):
            runtime.run(
                {
                    "r0": {"interactive": np.array([2.0, 1.0])},
                    "r1": {},
                }
            )


class TestFleetDifferential:
    """The load-bearing contract: one healthy region == the cluster."""

    def assert_region_matches_cluster(self, fleet_report, cluster_report):
        region = fleet_report.regions[0].report
        assert region is not None
        for tenant_report in cluster_report.tenants:
            name = tenant_report.tenant
            fleet_tenant = region.tenant(name)
            assert np.array_equal(
                tenant_report.offered_arrival_s,
                fleet_tenant.offered_arrival_s,
            )
            assert np.array_equal(
                tenant_report.arrival_s, fleet_tenant.arrival_s
            )
            assert np.array_equal(
                tenant_report.dispatch_s, fleet_tenant.dispatch_s
            )
            assert np.array_equal(
                tenant_report.completion_s, fleet_tenant.completion_s
            )
            assert np.array_equal(
                tenant_report.shed_arrival_s, fleet_tenant.shed_arrival_s
            )
            assert tenant_report.batches == fleet_tenant.batches
            assert tenant_report.core_busy_s == fleet_tenant.core_busy_s
            assert np.array_equal(
                tenant_report.batch_num_cores, fleet_tenant.batch_num_cores
            )

    def test_bit_identical_to_cluster_run(self):
        tenants = two_tenants()
        arrival = traces(num=400, rate=6000.0, seed=3)
        cluster = simulate_cluster_serving(tenants, arrival, pool_size=5)
        fleet = simulate_fleet_serving(
            tenants, [RegionSpec("solo", 5)], {"solo": arrival}
        )
        self.assert_region_matches_cluster(fleet, cluster)
        assert fleet.num_offered == cluster.num_offered
        assert fleet.num_served == cluster.num_served
        assert fleet.num_shed == cluster.num_shed
        assert fleet.num_remote == 0
        # End-to-end latency streams equal the cluster's bitwise.
        for tenant_report in cluster.tenants:
            trace = fleet.trace("solo", tenant_report.tenant)
            assert np.array_equal(
                trace.latency_s[trace.served],
                tenant_report.completion_s - tenant_report.arrival_s,
            )
        assert fleet.p50_s == pytest.approx(cluster_p50(cluster), abs=0.0)

    def test_differential_pin_sheds_identically(self):
        tenants = (
            tenant("capped", BatchingPolicy.dynamic(4, 1e-4), queue_cap=2),
        )
        arrival = {"capped": poisson_arrivals(5e5, 600, seed=4)}
        cluster = simulate_cluster_serving(tenants, arrival, pool_size=3)
        assert cluster.num_shed > 0  # the pin must cover admission
        fleet = simulate_fleet_serving(
            tenants, [RegionSpec("solo", 3)], {"solo": arrival}
        )
        self.assert_region_matches_cluster(fleet, cluster)
        assert fleet.num_shed == cluster.num_shed

    def test_explicit_zero_rtt_matches_default(self):
        tenants = two_tenants()
        arrival = traces(num=200, seed=5)
        base = simulate_fleet_serving(
            tenants, [RegionSpec("solo", 4)], {"solo": arrival}
        )
        explicit = simulate_fleet_serving(
            tenants,
            [RegionSpec("solo", 4)],
            {"solo": arrival},
            rtt_s=np.zeros((1, 1)),
        )
        for left, right in zip(base.traces, explicit.traces):
            assert np.array_equal(left.latency_s, right.latency_s)

    @pytest.mark.parametrize("kind", FLEET_ROUTING_KINDS)
    def test_every_routing_kind_degenerates_identically(self, kind):
        tenants = two_tenants()
        arrival = traces(num=200, seed=6)
        cluster = simulate_cluster_serving(tenants, arrival, pool_size=4)
        fleet = simulate_fleet_serving(
            tenants,
            [RegionSpec("solo", 4)],
            {"solo": arrival},
            routing=GlobalRoutingPolicy(kind=kind),
        )
        self.assert_region_matches_cluster(fleet, cluster)

    def test_priority_routing_and_elastic_pass_through(self):
        tenants = (
            tenant("hi", BatchingPolicy.dynamic(4, 1e-4), priority=1),
            tenant("lo", BatchingPolicy.fixed(8), priority=0),
        )
        arrival = {
            "hi": poisson_arrivals(3000.0, 200, seed=7),
            "lo": poisson_arrivals(2000.0, 150, seed=8),
        }
        routing = RoutingPolicy.priority()
        elastic = ElasticReallocation(pressure_ratio=2.0, min_queue=4)
        cluster = simulate_cluster_serving(
            tenants, arrival, pool_size=5, routing=routing, elastic=elastic
        )
        fleet = simulate_fleet_serving(
            tenants,
            [RegionSpec("solo", 5, routing=routing, elastic=elastic)],
            {"solo": arrival},
        )
        self.assert_region_matches_cluster(fleet, cluster)
        region = fleet.regions[0].report
        assert region.reallocations == cluster.reallocations

    def test_sub_threshold_faults_do_not_fail_over(self):
        tenants = two_tenants()
        arrival = traces(num=250, seed=9)
        schedule = outage_schedule(0.01, 0.02, magnitude=0.4)
        cluster = simulate_cluster_serving(
            tenants, arrival, pool_size=5, schedule=schedule
        )
        fleet = simulate_fleet_serving(
            tenants,
            [RegionSpec("solo", 5, schedule=schedule)],
            {"solo": arrival},
        )
        assert fleet.failovers == ()
        self.assert_region_matches_cluster(fleet, cluster)

    def test_reference_mode_matches_auto(self):
        tenants = two_tenants()
        arrival = traces(num=200, seed=10)
        auto = simulate_fleet_serving(
            tenants, [RegionSpec("solo", 4)], {"solo": arrival}, mode="auto"
        )
        reference = simulate_fleet_serving(
            tenants,
            [RegionSpec("solo", 4)],
            {"solo": arrival},
            mode="reference",
        )
        for left, right in zip(auto.traces, reference.traces):
            assert np.array_equal(left.latency_s, right.latency_s)
            assert np.array_equal(left.server_region, right.server_region)


def cluster_p50(cluster):
    latencies = np.concatenate(
        [
            report.completion_s - report.arrival_s
            for report in cluster.tenants
        ]
    )
    return float(np.percentile(latencies, 50.0))


class TestFleetRouting:
    def test_geo_affinity_keeps_healthy_fleet_home(self):
        tenants = two_tenants()
        fleet = simulate_fleet_serving(
            tenants,
            [RegionSpec("east", 4), RegionSpec("west", 4)],
            {"east": traces(seed=11), "west": traces(seed=12)},
            rtt_s=uniform_rtt(2, 0.01),
        )
        assert fleet.num_remote == 0
        for trace in fleet.traces:
            assert np.all(trace.server_region == trace.home_index)

    def test_failover_diverts_and_drains(self):
        tenants = two_tenants()
        onset, duration = 0.03, 0.04
        schedule = outage_schedule(onset, duration)
        east = traces(num=400, rate=6000.0, seed=13)
        fleet = simulate_fleet_serving(
            tenants,
            [
                RegionSpec("east", 4, schedule=schedule),
                RegionSpec("west", 4),
            ],
            {"east": east, "west": traces(num=100, rate=1500.0, seed=14)},
            rtt_s=uniform_rtt(2, 0.01),
        )
        assert len(fleet.failovers) == 1
        record = fleet.failovers[0]
        assert record.region == "east"
        assert record.survivor == "west"
        assert record.onset_s == onset
        assert record.until_s == pytest.approx(onset + duration)
        assert record.rerouted > 0
        assert math.isfinite(record.failover_latency_s)
        assert record.failover_latency_s > 0.0
        assert fleet.failover_time_s == record.failover_latency_s
        for name in ("interactive", "batch"):
            trace = fleet.trace("east", name)
            times = trace.offered_arrival_s
            inside = (times >= onset) & (times < onset + duration)
            # New arrivals divert during the window; everything
            # already routed before the onset drains at home.
            assert np.all(trace.server_region[inside] == 1)
            assert np.all(trace.server_region[~inside] == 0)
        # Diverted requests pay both RTT legs on top of service.
        diverted = np.concatenate(
            [
                fleet.trace("east", name).latency_s[
                    (fleet.trace("east", name).server_region == 1)
                    & fleet.trace("east", name).served
                ]
                for name in ("interactive", "batch")
            ]
        )
        assert np.all(diverted >= 0.01)

    def test_permanent_fault_diverts_forever(self):
        tenants = (tenant("solo", BatchingPolicy.dynamic(4, 1e-4)),)
        schedule = FaultSchedule(
            name="dead",
            events=(
                FaultEvent(
                    kind="dead_rings",
                    core=0,
                    onset_s=0.02,
                    magnitude=1.0,
                    rings=(0, 1, 2, 3),
                ),
            ),
        )
        arrival = {"solo": poisson_arrivals(4000.0, 200, seed=15)}
        fleet = simulate_fleet_serving(
            tenants,
            [
                RegionSpec("east", 2, schedule=schedule),
                RegionSpec("west", 2),
            ],
            {"east": arrival, "west": {}},
            rtt_s=uniform_rtt(2, 0.005),
        )
        record = fleet.failovers[0]
        assert record.until_s == math.inf
        trace = fleet.trace("east", "solo")
        late = trace.offered_arrival_s >= 0.02
        assert np.all(trace.server_region[late] == 1)

    def test_least_loaded_spreads_overload(self):
        tenants = (tenant("solo", BatchingPolicy.dynamic(8, 1e-3)),)
        # All load lands in one region; least-loaded must overflow to
        # the idle neighbour once the home backlog builds.
        arrival = {"solo": poisson_arrivals(2e6, 2000, seed=16)}
        fleet = simulate_fleet_serving(
            tenants,
            [RegionSpec("east", 3), RegionSpec("west", 3)],
            {"east": arrival, "west": {}},
            routing=GlobalRoutingPolicy.least_loaded(),
        )
        assert fleet.num_remote > 0
        assert fleet.regions[1].remote_in > 0

    def test_latency_weighted_prefers_home_under_huge_rtt(self):
        tenants = (tenant("solo", BatchingPolicy.dynamic(8, 1e-3)),)
        arrival = {"solo": poisson_arrivals(2e6, 2000, seed=16)}
        fleet = simulate_fleet_serving(
            tenants,
            [RegionSpec("east", 3), RegionSpec("west", 3)],
            {"east": arrival, "west": {}},
            rtt_s=uniform_rtt(2, 10.0),
            routing=GlobalRoutingPolicy.latency_weighted(),
        )
        assert fleet.num_remote == 0

    def test_remote_latency_includes_rtt_legs(self):
        tenants = (tenant("solo", BatchingPolicy.dynamic(4, 1e-4)),)
        rtt = 0.02
        schedule = outage_schedule(0.0, math.inf, magnitude=0.9)
        arrival = {"solo": poisson_arrivals(3000.0, 100, seed=17)}
        fleet = simulate_fleet_serving(
            tenants,
            [
                RegionSpec("east", 2, schedule=schedule),
                RegionSpec("west", 2),
            ],
            {"east": arrival, "west": {}},
            rtt_s=uniform_rtt(2, rtt),
        )
        trace = fleet.trace("east", "solo")
        assert np.all(trace.server_region == 1)
        assert np.all(trace.latency_s[trace.served] >= rtt)


class TestFleetAutoscaler:
    def test_idle_standby_region_diverts_its_locals(self):
        tenants = two_tenants()
        autoscaler = FleetAutoscaler(
            epoch_s=1.0, burn_up=1e9, burn_down=1e-12, min_pools=1
        )
        fleet = simulate_fleet_serving(
            tenants,
            [RegionSpec("east", 4), RegionSpec("standby", 4)],
            {"east": traces(seed=18), "standby": traces(seed=19)},
            autoscaler=autoscaler,
        )
        for name in ("interactive", "batch"):
            trace = fleet.trace("standby", name)
            assert np.all(trace.server_region == 0)
        assert fleet.regions[1].routed_in == 0

    def test_burn_commissions_and_drains(self):
        tenants = (tenant("solo", BatchingPolicy.dynamic(8, 1e-3)),)
        regions = [
            RegionSpec("east", 3),
            RegionSpec("west", 3),
        ]
        capacity = estimate_region_capacity_rps(tenants, regions[0])
        rate = 0.5 * capacity
        # Load at half of one pool's capacity: burn on the single
        # active pool is ~0.5 (commission at 0.3); once both pools are
        # active burn halves to ~0.25 (drain at 0.3 applies only after
        # the commissioned epoch's burn is re-evaluated).
        arrival = {
            "east": {"solo": poisson_arrivals(rate, 4000, seed=20)},
            "west": {},
        }
        fleet = simulate_fleet_serving(
            tenants,
            regions,
            arrival,
            routing=GlobalRoutingPolicy.least_loaded(),
            autoscaler=FleetAutoscaler(
                epoch_s=400.0 / rate,
                burn_up=0.3,
                burn_down=0.28,
                min_pools=1,
                max_pools=2,
            ),
        )
        actions = [event.action for event in fleet.autoscale_events]
        assert "commission" in actions
        assert "drain" in actions
        first = fleet.autoscale_events[0]
        assert first.action == "commission"
        assert first.region == "west"
        assert first.burn > 0.3
        assert first.active_after == 2

    def test_commissioned_pool_serves_after_warmup(self):
        tenants = (tenant("solo", BatchingPolicy.dynamic(8, 1e-3)),)
        regions = [RegionSpec("east", 3), RegionSpec("west", 3)]
        capacity = estimate_region_capacity_rps(tenants, regions[0])
        rate = 0.8 * capacity
        arrival = {
            "east": {"solo": poisson_arrivals(rate, 4000, seed=21)},
            "west": {},
        }
        fleet = simulate_fleet_serving(
            tenants,
            regions,
            arrival,
            routing=GlobalRoutingPolicy.least_loaded(),
            autoscaler=FleetAutoscaler(
                epoch_s=400.0 / rate,
                burn_up=0.5,
                burn_down=0.01,
                warmup_s=100.0 / rate,
                min_pools=1,
                max_pools=2,
            ),
        )
        commissions = [
            event
            for event in fleet.autoscale_events
            if event.action == "commission"
        ]
        assert commissions
        assert fleet.regions[1].routed_in > 0
        trace = fleet.trace("east", "solo")
        west_served = trace.offered_arrival_s[trace.server_region == 1]
        # Nothing lands on the standby before commissioning + warm-up.
        earliest_allowed = commissions[0].time_s + 100.0 / rate
        assert np.all(west_served >= earliest_allowed)


class TestFleetReport:
    def build(self):
        tenants = two_tenants()
        return simulate_fleet_serving(
            tenants,
            [
                RegionSpec("east", 4, schedule=outage_schedule(0.02, 0.02)),
                RegionSpec("west", 5),
            ],
            {"east": traces(seed=22), "west": traces(seed=23)},
            rtt_s=uniform_rtt(2, 0.004),
        )

    def test_conservation_and_accessors(self):
        report = self.build()
        assert report.num_offered == report.num_served + report.num_shed
        assert report.region("east").name == "east"
        with pytest.raises(KeyError, match="unknown region"):
            report.region("mars")
        trace = report.trace("east", "interactive")
        assert trace.num_offered == trace.num_served + trace.num_shed
        with pytest.raises(KeyError, match="no stream"):
            report.trace("east", "ghost")

    def test_percentiles_and_describe(self):
        report = self.build()
        assert 0.0 < report.p50_s <= report.p95_s <= report.p99_s
        for outcome in report.regions:
            assert outcome.p50_s <= outcome.p99_s
        text = report.describe()
        assert "east" in text and "west" in text
        assert "failover" in text

    def test_placement_efficiency_bounds(self):
        report = self.build()
        assert 0.0 <= report.placement_efficiency <= 1.0

    def test_idle_region_percentiles_raise(self):
        tenants = (tenant("solo"),)
        fleet = simulate_fleet_serving(
            tenants,
            [RegionSpec("east", 2), RegionSpec("idle", 2)],
            {
                "east": {"solo": poisson_arrivals(2000.0, 50, seed=24)},
                "idle": {},
            },
        )
        idle = fleet.region("idle")
        assert idle.report is None
        assert idle.num_served == 0
        with pytest.raises(ValueError, match="percentiles"):
            idle.p99_s
        assert math.isnan(fleet.failover_time_s)
        assert "idle" in fleet.describe()

    def test_fleet_latencies_match_traces(self):
        report = self.build()
        from_traces = np.sort(
            np.concatenate(
                [trace.latency_s[trace.served] for trace in report.traces]
            )
        )
        from_regions = np.sort(report.latencies_s)
        assert np.array_equal(from_traces, from_regions)


class TestFleetMixes:
    @pytest.mark.parametrize("name", FLEET_MIXES)
    def test_mix_runs_and_conserves(self, name):
        scenario = fleet_mix(name, rate_rps=6000.0, num_requests=600, seed=0)
        report = simulate_fleet_serving(
            scenario.tenants,
            scenario.regions,
            scenario.arrival_s,
            rtt_s=scenario.rtt_s,
            routing=scenario.routing,
            autoscaler=scenario.autoscaler,
        )
        assert report.num_offered == report.num_served + report.num_shed
        assert report.num_offered > 0

    def test_mix_is_reproducible(self):
        left = fleet_mix("follow-the-sun", 6000.0, 300, seed=7)
        right = fleet_mix("follow-the-sun", 6000.0, 300, seed=7)
        for region in left.arrival_s:
            for name in left.arrival_s[region]:
                assert np.array_equal(
                    left.arrival_s[region][name],
                    right.arrival_s[region][name],
                )

    def test_regional_outage_mix_fails_over(self):
        scenario = fleet_mix(
            "regional-outage", rate_rps=6000.0, num_requests=600, seed=0
        )
        report = simulate_fleet_serving(
            scenario.tenants,
            scenario.regions,
            scenario.arrival_s,
            rtt_s=scenario.rtt_s,
            routing=scenario.routing,
            autoscaler=scenario.autoscaler,
        )
        assert report.failovers
        assert report.failovers[0].region == "primary"
        assert report.failovers[0].rerouted > 0

    def test_burst_overflow_mix_commissions_standby(self):
        scenario = fleet_mix(
            "burst-overflow", rate_rps=6000.0, num_requests=900, seed=0
        )
        report = simulate_fleet_serving(
            scenario.tenants,
            scenario.regions,
            scenario.arrival_s,
            rtt_s=scenario.rtt_s,
            routing=scenario.routing,
            autoscaler=scenario.autoscaler,
        )
        actions = {
            (event.action, event.region)
            for event in report.autoscale_events
        }
        assert ("commission", "standby") in actions

    def test_unknown_mix_rejected(self):
        with pytest.raises(KeyError, match="unknown fleet mix"):
            fleet_mix("full-moon", 1000.0, 100)
        with pytest.raises(ValueError, match="rate"):
            fleet_mix("follow-the-sun", 0.0, 100)
        with pytest.raises(ValueError, match="request count"):
            fleet_mix("follow-the-sun", 1000.0, 0)


class TestFleetSweep:
    def test_sweep_compares_routing_policies(self):
        tenants = two_tenants()
        regions = [RegionSpec("east", 4), RegionSpec("west", 4)]
        arrival = {"east": traces(seed=25), "west": traces(seed=26)}
        points = sweep_fleet_serving(
            tenants,
            regions,
            arrival,
            [GlobalRoutingPolicy(kind=kind) for kind in FLEET_ROUTING_KINDS],
            rtt_s=uniform_rtt(2, 0.01),
        )
        assert [point.routing for point in points] == list(
            FLEET_ROUTING_KINDS
        )
        for point in points:
            assert 0.0 <= point.shed_fraction <= 1.0
            assert 0.0 <= point.remote_fraction <= 1.0
            assert point.p99_s > 0.0
            rows = point.rows()
            assert len(rows) == len(regions)
            for row in rows:
                assert len(row) == len(FLEET_SWEEP_HEADER)

    def test_sweep_requires_policies(self):
        with pytest.raises(ValueError, match="routing policy"):
            sweep_fleet_serving(
                two_tenants(),
                [RegionSpec("east", 4)],
                {"east": traces()},
                [],
            )
