"""Tests for broadcast-and-weight MAC units and layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.photonics.broadcast_weight import (
    BroadcastAndWeightLayer,
    PhotonicMacUnit,
)
from repro.photonics.noise import NoiseConfig, realistic
from repro.photonics.wdm import WdmGrid


class TestPhotonicMacUnit:
    def test_ideal_dot_product_exact(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, 16)
        w = rng.uniform(-1, 1, 16)
        mac = PhotonicMacUnit(16)
        assert mac.dot(x, w) == pytest.approx(float(x @ w), abs=1e-12)

    @given(
        x=arrays(float, 9, elements=st.floats(min_value=0.0, max_value=1.0, width=64)),
        w=arrays(float, 9, elements=st.floats(min_value=-1.0, max_value=1.0, width=64)),
    )
    @settings(max_examples=40, deadline=None)
    def test_ideal_dot_product_property(self, x, w):
        mac = PhotonicMacUnit(9)
        assert mac.dot(x, w) == pytest.approx(float(x @ w), abs=1e-9)

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            PhotonicMacUnit(0)

    def test_grid_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PhotonicMacUnit(4, grid=WdmGrid(5))

    def test_zero_weights_give_zero(self):
        mac = PhotonicMacUnit(8)
        assert mac.dot(np.full(8, 0.7), np.zeros(8)) == pytest.approx(0.0, abs=1e-12)

    def test_negative_weights_give_negative_output(self):
        mac = PhotonicMacUnit(4)
        result = mac.dot(np.full(4, 0.5), np.full(4, -1.0))
        assert result == pytest.approx(-2.0, abs=1e-12)

    def test_noisy_mode_close_but_not_exact(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, 32)
        w = rng.uniform(-1, 1, 32)
        mac = PhotonicMacUnit(
            32,
            noise=NoiseConfig(enabled=True, ring_tuning_sigma=0.002, seed=4),
        )
        result = mac.dot(x, w)
        exact = float(x @ w)
        assert result != pytest.approx(exact, abs=1e-12)
        assert result == pytest.approx(exact, abs=0.5)

    def test_calibration_scale_positive(self):
        assert PhotonicMacUnit(4).calibration_scale > 0


class TestBroadcastAndWeightLayer:
    def test_ideal_matvec_exact(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, 12)
        W = rng.uniform(-1, 1, (7, 12))
        layer = BroadcastAndWeightLayer(12, 7)
        assert np.allclose(layer.matvec(x, W), W @ x, atol=1e-12)

    def test_output_shape(self):
        layer = BroadcastAndWeightLayer(5, 3)
        layer.set_weight_matrix(np.zeros((3, 5)))
        assert layer.compute(np.zeros(5)).shape == (3,)

    def test_total_rings_is_k_times_nkernel(self):
        layer = BroadcastAndWeightLayer(9, 5)
        assert layer.total_rings == 45

    def test_weight_matrix_shape_check(self):
        layer = BroadcastAndWeightLayer(5, 3)
        with pytest.raises(ValueError):
            layer.set_weight_matrix(np.zeros((3, 4)))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            BroadcastAndWeightLayer(0, 3)
        with pytest.raises(ValueError):
            BroadcastAndWeightLayer(3, 0)

    def test_splitter_loss_calibrated_out(self):
        # Result must be independent of the number of banks sharing the bus.
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, 6)
        w = rng.uniform(-1, 1, 6)
        few = BroadcastAndWeightLayer(6, 2)
        many = BroadcastAndWeightLayer(6, 50)
        few_result = few.matvec(x, np.tile(w, (2, 1)))[0]
        many_result = many.matvec(x, np.tile(w, (50, 1)))[0]
        assert few_result == pytest.approx(many_result, abs=1e-12)
        assert few_result == pytest.approx(float(w @ x), abs=1e-12)

    def test_kernels_computed_in_parallel_agree_with_sequential(self):
        # The PCNNA claim: K banks on one broadcast equal K separate MACs.
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 1, 10)
        W = rng.uniform(-1, 1, (4, 10))
        layer = BroadcastAndWeightLayer(10, 4)
        parallel = layer.matvec(x, W)
        mac = PhotonicMacUnit(10)
        sequential = np.array([mac.dot(x, W[k]) for k in range(4)])
        assert np.allclose(parallel, sequential, atol=1e-12)

    def test_realistic_noise_bounded_error(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 1, 27)
        W = rng.uniform(-1, 1, (3, 27))
        layer = BroadcastAndWeightLayer(27, 3, noise=realistic(seed=6))
        result = layer.matvec(x, W)
        exact = W @ x
        # Crosstalk at Q=8000 / 100 GHz dominates; errors stay bounded.
        assert np.max(np.abs(result - exact)) < 2.0
