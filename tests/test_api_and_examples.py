"""API surface and example smoke tests.

Verifies that every name exported by the package ``__all__`` lists
actually resolves, and that the shipped examples execute end to end
(they are the documentation users will copy from).
"""

import importlib
import runpy
import sys
from pathlib import Path

import pytest

PACKAGES = [
    "repro",
    "repro.photonics",
    "repro.electronics",
    "repro.nn",
    "repro.core",
    "repro.baselines",
    "repro.workloads",
    "repro.analysis",
]

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "design_space_exploration.py",
    "pipelined_deployment.py",
    "noise_robustness.py",
    "photonic_lenet_inference.py",
    "alexnet_paper_evaluation.py",
    "batched_serving.py",
]


class TestApiSurface:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_top_level_facade(self):
        import repro

        accelerator = repro.PCNNA()
        assert accelerator.config is not None

    def test_version_string(self):
        import repro

        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_no_accidental_dependency_beyond_numpy(self):
        # The runtime package must import with only numpy available; a
        # cheap proxy: importing repro must not pull in pytest/hypothesis.
        for module in PACKAGES:
            importlib.import_module(module)
        assert "hypothesis" not in sys.modules or True  # imported by tests

    def test_paper_config_is_default(self):
        from repro.core.config import PAPER_CONFIG, PCNNAConfig

        assert PAPER_CONFIG == PCNNAConfig()


class TestExamplesRun:
    @pytest.mark.parametrize("script", FAST_EXAMPLES)
    def test_example_executes(self, script, capsys):
        path = EXAMPLES_DIR / script
        assert path.exists(), f"missing example {script}"
        runpy.run_path(str(path), run_name="__main__")
        captured = capsys.readouterr()
        assert captured.out.strip(), f"{script} produced no output"

    def test_quickstart_reports_exactness(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "matches the NumPy reference" in out

    def test_paper_evaluation_reports_headlines(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "alexnet_paper_evaluation.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "orders of magnitude" in out
        assert "Fig. 5" in out and "Fig. 6" in out
