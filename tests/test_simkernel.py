"""Tests for the unified discrete-event serving kernel."""

import numpy as np
import pytest

from repro.core import traffic
from repro.core.faults import FaultPlugin, FaultSchedule
from repro.core.simkernel import (
    BatchingPolicy,
    DispatchContext,
    EventLoopKernel,
    KernelPlugin,
    execute_dispatch,
    plan_dispatch,
    validate_arrival_trace,
)
from repro.core.traffic import PipelineServiceModel, ServingSimulator
from repro.workloads import alexnet_conv_specs, poisson_arrivals


def model(cores: int = 3) -> PipelineServiceModel:
    return PipelineServiceModel.from_specs(alexnet_conv_specs(), cores)


class TestReExports:
    def test_traffic_re_exports_the_kernel_front_door(self):
        """The historical traffic API is the kernel's objects, not
        copies — one definition, every simulator shares it."""
        assert traffic.BatchingPolicy is BatchingPolicy
        assert traffic.plan_dispatch is plan_dispatch
        assert traffic.validate_arrival_trace is validate_arrival_trace


class TestBatchingPolicyCapped:
    def test_non_binding_cap_returns_self(self):
        policy = BatchingPolicy.dynamic(8, 1e-3)
        assert policy.capped(8) is policy
        assert policy.capped(99) is policy

    def test_binding_cap_clamps_max_batch_only(self):
        policy = BatchingPolicy.dynamic(8, 1e-3)
        capped = policy.capped(3)
        assert capped.max_batch == 3
        assert capped.max_wait_s == policy.max_wait_s
        assert capped.name == policy.name

    def test_invalid_cap(self):
        with pytest.raises(ValueError, match="cap"):
            BatchingPolicy.fifo().capped(0)


class TestValidateArrivalTrace:
    def test_empty_trace_has_its_own_message(self):
        with pytest.raises(ValueError, match="empty"):
            validate_arrival_trace(np.array([]))

    def test_non_1d_and_unsorted_still_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            validate_arrival_trace(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="sorted"):
            validate_arrival_trace(np.array([2.0, 1.0]))


class RecordingPlugin(KernelPlugin):
    """Counts hook invocations and checks the context it sees."""

    def __init__(self):
        self.starts = 0
        self.planned = []
        self.completed = []
        self.ends = 0

    def on_run_start(self, ctx):
        self.starts += 1
        assert ctx.head == 0 and not ctx.batches

    def on_dispatch_planned(self, ctx, dispatch_s, size):
        # The batch is sealed but not yet booked.
        self.planned.append((ctx.head, dispatch_s, size))

    def on_batch_complete(self, ctx, batch):
        assert ctx.head == batch.first_request + batch.size
        self.completed.append(batch)

    def on_run_end(self, ctx):
        self.ends += 1
        assert ctx.done


class TestEventLoopKernel:
    def test_no_op_plugin_is_bit_identical(self):
        """A vacuous plugin must not perturb a single float."""
        arrivals = poisson_arrivals(5000.0, 1000, seed=3)
        policy = BatchingPolicy.dynamic(8, 1e-3)
        bare = EventLoopKernel(model(), policy).run(arrivals)
        hooked = EventLoopKernel(model(), policy, (KernelPlugin(),)).run(
            arrivals
        )
        assert np.array_equal(bare.dispatch_s, hooked.dispatch_s)
        assert np.array_equal(bare.completion_s, hooked.completion_s)
        assert bare.batches == hooked.batches
        assert bare.core_busy_s == hooked.core_busy_s

    def test_facade_matches_kernel(self):
        """ServingSimulator is the kernel with no plugins."""
        arrivals = poisson_arrivals(5000.0, 500, seed=5)
        policy = BatchingPolicy.fixed(16)
        report = ServingSimulator(model(), policy).run(arrivals)
        run = EventLoopKernel(model(), policy).run(arrivals)
        assert np.array_equal(report.completion_s, run.completion_s)
        assert report.batches == run.batches
        assert report.num_cores == run.initial_num_cores

    def test_hooks_fire_once_per_batch_in_order(self):
        arrivals = poisson_arrivals(2000.0, 200, seed=7)
        plugin = RecordingPlugin()
        run = EventLoopKernel(
            model(), BatchingPolicy.dynamic(4, 1e-3), (plugin,)
        ).run(arrivals)
        assert plugin.starts == 1
        assert plugin.ends == 1
        assert len(plugin.planned) == len(run.batches)
        assert plugin.completed == list(run.batches)
        # Each planned head matches the batch the kernel then booked.
        for (head, dispatch, size), batch in zip(
            plugin.planned, run.batches
        ):
            assert head == batch.first_request
            assert dispatch == batch.dispatch_s
            assert size == batch.size

    def test_plugin_downtime_delays_completions(self):
        """Pushing core_free forward in the hook rides the shared
        clock, exactly like recalibration downtime."""

        class Downtime(KernelPlugin):
            def on_dispatch_planned(self, ctx, dispatch_s, size):
                ctx.core_free[0] = max(ctx.core_free[0], dispatch_s) + 1e-3

        arrivals = poisson_arrivals(2000.0, 100, seed=2)
        policy = BatchingPolicy.fifo()
        bare = EventLoopKernel(model(), policy).run(arrivals)
        slowed = EventLoopKernel(model(), policy, (Downtime(),)).run(arrivals)
        assert np.all(slowed.completion_s >= bare.completion_s)
        assert slowed.completion_s.max() > bare.completion_s.max()

    def test_rejects_bad_traces(self):
        kernel = EventLoopKernel(model(), BatchingPolicy.fifo())
        with pytest.raises(ValueError, match="empty"):
            kernel.run(np.array([]))
        with pytest.raises(ValueError, match="sorted"):
            kernel.run(np.array([3.0, 1.0]))

    def test_fault_plugin_instance_is_reusable_across_runs(self):
        """on_run_start resets every per-run record, so one plugin
        attached to consecutive runs must not accumulate history."""
        plugin = FaultPlugin(FaultSchedule.none())
        kernel = EventLoopKernel(
            model(), BatchingPolicy.dynamic(8, 1e-3), (plugin,)
        )
        arrivals = poisson_arrivals(2000.0, 100, seed=1)
        first = kernel.run(arrivals)
        second = kernel.run(arrivals)
        assert first.batches == second.batches
        assert len(plugin.proxies) == len(second.batches)
        assert len(plugin.widths) == len(second.batches)
        assert len(plugin.snapshots) == len(second.batches)
        assert plugin.recalibrations == []
        assert plugin.repartitions == []


class TestExecuteDispatch:
    def test_busy_time_charged_to_physical_cores(self):
        """Stage→core indirection keeps per-physical-core accounting
        correct after a plugin re-maps the pipeline."""
        arrivals = validate_arrival_trace(np.array([0.0, 1e-5]))
        svc = model(2)
        ctx = DispatchContext(svc, BatchingPolicy.fifo(), arrivals)
        ctx.core_busy = [0.0, 0.0, 0.0, 0.0]
        ctx.stage_to_core = [3, 1]
        batch = execute_dispatch(ctx, 0.0, 1)
        assert batch.size == 1 and batch.first_request == 0
        assert ctx.core_busy[0] == 0.0 and ctx.core_busy[2] == 0.0
        assert ctx.core_busy[3] == svc.core_busy_s(0, 1)
        assert ctx.core_busy[1] == svc.core_busy_s(1, 1)
        assert ctx.num_requests == 2
        assert ctx.head == 1 and not ctx.done
