"""Golden-regression tests: fixed-seed traces must never drift.

The fixtures under ``tests/golden/`` are end-to-end accelerator traces
(LeNet-5 and the GoogLeNet stem, ideal and DAC/ADC-quantized) captured
at a known-good commit.  Any numeric change to the photonic engine, the
electronic layers, the im2col gather, the scaling/decode chain, or the
quantizers shows up here as a *bit* difference — long before it is
large enough to trip a tolerance-based test.

On an intentional numeric change, regenerate with:

    PYTHONPATH=src python tests/golden/regenerate.py

and review the fixture diff as part of the change.  Environments whose
BLAS rounds differently than the capture machine can relax the check to
a tolerance with ``PCNNA_GOLDEN_EXACT=0`` (drift beyond 1e-9 still
fails).
"""

import os

import numpy as np
import pytest

from golden.regenerate import CASES, compute_trace, fixture_path

EXACT = os.environ.get("PCNNA_GOLDEN_EXACT", "1") != "0"


def _assert_matches(name: str, expected: np.ndarray, actual: np.ndarray) -> None:
    if expected.shape != actual.shape:
        pytest.fail(
            f"{name}: shape drifted from {expected.shape} to {actual.shape}"
        )
    if np.array_equal(expected, actual):
        return
    drift = float(np.max(np.abs(expected - actual)))
    message = (
        f"{name}: numeric drift vs golden fixture (max |delta| = {drift:.3e}, "
        f"{int((expected != actual).sum())}/{expected.size} values differ). "
        "If this change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/golden/regenerate.py` and review the "
        "fixture diff."
    )
    if EXACT or drift > 1e-9:
        pytest.fail(message)


@pytest.mark.parametrize(("network_name", "mode"), CASES)
def test_trace_matches_golden_fixture(network_name, mode):
    path = fixture_path(network_name, mode)
    assert path.exists(), (
        f"missing golden fixture {path}; run "
        "`PYTHONPATH=src python tests/golden/regenerate.py`"
    )
    with np.load(path) as fixture:
        trace = compute_trace(network_name, mode)
        # The input digest guards the seeded workload generators
        # themselves: if the batch or the weight init drifts, every
        # downstream number is meaningless.
        assert np.array_equal(
            fixture["inputs_sha256"], trace["inputs_sha256"]
        ), (
            f"{network_name}/{mode}: the seeded input batch itself "
            "drifted — repro.workloads generators changed behaviour"
        )
        for key in ("first_conv_maps", "outputs"):
            _assert_matches(
                f"{network_name}/{mode}/{key}", fixture[key], trace[key]
            )


@pytest.mark.parametrize(("network_name", "mode"), CASES)
def test_fixture_metadata_pins_the_scenario(network_name, mode):
    """The capture parameters are stored in the fixture, so a silent
    change to the regeneration script cannot masquerade as drift."""
    from golden import regenerate

    with np.load(fixture_path(network_name, mode)) as fixture:
        assert int(fixture["meta_batch"]) == regenerate.BATCH
        assert int(fixture["meta_input_seed"]) == regenerate.INPUT_SEED
        assert int(fixture["meta_weight_seed"]) == regenerate.WEIGHT_SEED
        assert float(fixture["meta_scale"]) == regenerate.SCALE


class TestFaultedGoldenTrace:
    """The canonical faulted LeNet-5 serving trace must never drift —
    not the schedule (dispatch/completion times, batch sizes, downtime),
    not the measured accuracy proxy, and not the degraded engine replay."""

    FIXTURE_KEYS = (
        "arrival_s",
        "dispatch_s",
        "completion_s",
        "batch_sizes",
        "accuracy_proxy",
        "core_downtime_s",
        "outputs",
        "reference_outputs",
        "divergence_per_batch",
    )

    def test_faulted_trace_matches_golden_fixture(self):
        from golden.regenerate import compute_faulted_trace

        path = fixture_path("lenet5", "faulted")
        assert path.exists(), (
            f"missing golden fixture {path}; run "
            "`PYTHONPATH=src python tests/golden/regenerate.py`"
        )
        with np.load(path) as fixture:
            trace = compute_faulted_trace()
            assert np.array_equal(
                fixture["inputs_sha256"], trace["inputs_sha256"]
            ), "the seeded input batch itself drifted"
            for key in self.FIXTURE_KEYS:
                _assert_matches(
                    f"lenet5/faulted/{key}", fixture[key], trace[key]
                )

    def test_faulted_metadata_pins_the_scenario(self):
        from golden import regenerate

        with np.load(fixture_path("lenet5", "faulted")) as fixture:
            assert int(fixture["meta_requests"]) == regenerate.FAULTED_REQUESTS
            assert int(fixture["meta_input_seed"]) == regenerate.INPUT_SEED
            assert int(fixture["meta_weight_seed"]) == regenerate.WEIGHT_SEED
            assert (
                int(fixture["meta_arrival_seed"])
                == regenerate.FAULTED_ARRIVAL_SEED
            )
            assert (
                float(fixture["meta_drift_total_k"])
                == regenerate.FAULTED_DRIFT_TOTAL_K
            )

    def test_faulted_fixture_is_genuinely_degraded(self):
        """Sanity: the scenario really degrades the run — the proxy
        worsens along the trace, the replay diverges from the fault-free
        reference, and recalibration downtime was charged."""
        with np.load(fixture_path("lenet5", "faulted")) as fixture:
            proxy = fixture["accuracy_proxy"]
            assert proxy[-1] > proxy[0]
            assert proxy.max() > 1.0  # the dead ring is in there
            assert fixture["divergence_per_batch"].max() > 0.0
            assert not np.array_equal(
                fixture["outputs"], fixture["reference_outputs"]
            )
            assert fixture["core_downtime_s"].sum() > 0.0


def test_quantized_fixture_differs_from_ideal():
    """Sanity: the two modes are genuinely different scenarios (a broken
    quantizer silently acting as a no-op would otherwise pass both)."""
    with np.load(fixture_path("lenet5", "ideal")) as ideal, np.load(
        fixture_path("lenet5", "quantized")
    ) as quantized:
        assert not np.array_equal(ideal["outputs"], quantized["outputs"])
        assert np.array_equal(ideal["inputs_sha256"], quantized["inputs_sha256"])


class TestVectorizedTrafficGolden:
    """PR 6: the canonical vectorized dynamic-batching serving trace.

    The fixture pins the vectorized kernel's full observable surface —
    batch plan, per-request streams, busy accounting, percentiles — so
    any change to the planners or the max-plus scans shows up as a bit
    difference.  The bit-identity pins in ``test_vectorized_kernel.py``
    extend the guard to the reference loop.
    """

    FIXTURE_KEYS = (
        "dispatch_s",
        "completion_s",
        "batch_first_request",
        "batch_sizes",
        "batch_dispatch_s",
        "batch_completion_s",
        "core_busy_s",
        "percentiles_s",
    )

    def test_traffic_trace_matches_golden_fixture(self):
        from golden.regenerate import compute_traffic_trace

        path = fixture_path("traffic", "vectorized")
        assert path.exists(), (
            f"missing golden fixture {path}; run "
            "`PYTHONPATH=src python tests/golden/regenerate.py`"
        )
        with np.load(path) as fixture:
            trace = compute_traffic_trace()
            assert np.array_equal(
                fixture["arrivals_sha256"], trace["arrivals_sha256"]
            ), "the seeded arrival trace itself drifted"
            for key in self.FIXTURE_KEYS:
                _assert_matches(
                    f"traffic/vectorized/{key}", fixture[key], trace[key]
                )

    def test_traffic_metadata_pins_the_scenario(self):
        from golden import regenerate

        with np.load(fixture_path("traffic", "vectorized")) as fixture:
            assert int(fixture["meta_requests"]) == regenerate.TRAFFIC_REQUESTS
            assert (
                int(fixture["meta_arrival_seed"])
                == regenerate.TRAFFIC_ARRIVAL_SEED
            )
            assert int(fixture["meta_cores"]) == regenerate.TRAFFIC_CORES
            assert (
                int(fixture["meta_max_batch"]) == regenerate.TRAFFIC_MAX_BATCH
            )
            assert (
                float(fixture["meta_max_wait_s"])
                == regenerate.TRAFFIC_MAX_WAIT_S
            )
            assert (
                float(fixture["meta_load_factor"])
                == regenerate.TRAFFIC_LOAD_FACTOR
            )

    def test_traffic_fixture_exercises_real_batching(self):
        """Sanity: the scenario genuinely batches (not 2000 solo
        dispatches) and genuinely queues (overloaded at 2x capacity)."""
        with np.load(fixture_path("traffic", "vectorized")) as fixture:
            sizes = fixture["batch_sizes"]
            assert sizes.sum() == int(fixture["meta_requests"])
            assert sizes.max() == int(fixture["meta_max_batch"])
            assert len(sizes) < int(fixture["meta_requests"])
            assert np.all(np.diff(fixture["batch_dispatch_s"]) >= 0.0)


class TestFleetFailoverGolden:
    """PR 8: the canonical two-region failover trace.

    The fixture pins the fleet runtime's full observable surface on the
    canonical mid-run-outage scenario — every routing decision, the
    failover window and its recovery latency, the per-stream latency
    arrays, and the global and per-region percentiles — so any change
    to the global router, the outage-window derivation, the RTT
    charging, or the back-mapping shows up as a bit difference.
    """

    SCALAR_KEYS = (
        "failover_window_s",
        "failover_latency_s",
        "failover_rerouted",
        "global_percentiles_s",
        "region_percentiles_s",
        "placement_efficiency",
    )

    def test_failover_trace_matches_golden_fixture(self):
        from golden.regenerate import (
            FLEET_STREAMS,
            compute_fleet_failover_trace,
        )

        path = fixture_path("fleet", "failover")
        assert path.exists(), (
            f"missing golden fixture {path}; run "
            "`PYTHONPATH=src python tests/golden/regenerate.py`"
        )
        with np.load(path) as fixture:
            trace = compute_fleet_failover_trace()
            assert np.array_equal(
                fixture["arrivals_sha256"], trace["arrivals_sha256"]
            ), "the seeded arrival traces themselves drifted"
            keys = list(self.SCALAR_KEYS)
            for region, tenant in FLEET_STREAMS:
                for field in ("server_region", "served", "latency_s"):
                    keys.append(f"{region}_{tenant}_{field}")
            for key in keys:
                expected, actual = fixture[key], trace[key]
                if expected.dtype.kind == "f":
                    _assert_matches(f"fleet/failover/{key}", expected, actual)
                else:
                    assert np.array_equal(expected, actual), (
                        f"fleet/failover/{key}: drift vs golden fixture; "
                        "if intentional, regenerate with `PYTHONPATH=src "
                        "python tests/golden/regenerate.py`"
                    )

    def test_failover_metadata_pins_the_scenario(self):
        from golden import regenerate

        with np.load(fixture_path("fleet", "failover")) as fixture:
            assert (
                int(fixture["meta_requests_per_stream"])
                == regenerate.FLEET_REQUESTS_PER_STREAM
            )
            assert (
                int(fixture["meta_arrival_seed"])
                == regenerate.FLEET_ARRIVAL_SEED
            )
            assert float(fixture["meta_rtt_s"]) == regenerate.FLEET_RTT_S
            assert (
                int(fixture["meta_pool_size"]) == regenerate.FLEET_POOL_SIZE
            )

    def test_failover_fixture_genuinely_fails_over(self):
        """Sanity: the scenario really diverts — the outage window is
        finite and mid-run, east requests land on west inside it, and
        diverted requests pay at least the RTT on top of service."""
        with np.load(fixture_path("fleet", "failover")) as fixture:
            onset, until = fixture["failover_window_s"]
            assert 0.0 < onset < until < np.inf
            assert int(fixture["failover_rerouted"]) > 0
            assert float(fixture["failover_latency_s"]) > 0.0
            diverted = fixture["east_interactive_server_region"] == 1
            assert diverted.any() and not diverted.all()
            rtt = float(fixture["meta_rtt_s"])
            served = fixture["east_interactive_served"]
            latency = fixture["east_interactive_latency_s"]
            assert np.all(latency[diverted & served] >= rtt)
            # The west region never diverts (it stays healthy).
            assert np.all(fixture["west_interactive_server_region"] == 1)
            assert np.all(fixture["west_batch_server_region"] == 1)


class TestAdaptiveRecalGolden:
    """PR 9: the canonical EWMA-controlled drifting-LeNet trace.

    The fixture pins the adaptive control plane's observable surface —
    the controller's complete decision log, the accuracy proxy it
    steered, the downtime it spent, and the latency percentiles of the
    run it shaped — so any change to the EWMA estimator, the gate
    ordering, or the decision bookkeeping shows up as a bit difference.
    """

    FIXTURE_KEYS = (
        "dispatch_s",
        "completion_s",
        "batch_sizes",
        "accuracy_proxy",
        "core_downtime_s",
        "decision_time_s",
        "decision_core",
        "decision_action",
        "decision_error",
        "decision_smoothed",
        "decision_projected",
        "num_recalibrations",
        "percentiles_s",
    )

    def test_adaptive_trace_matches_golden_fixture(self):
        from golden.regenerate import compute_adaptive_recal_trace

        path = fixture_path("adaptive", "recal")
        assert path.exists(), (
            f"missing golden fixture {path}; run "
            "`PYTHONPATH=src python tests/golden/regenerate.py`"
        )
        with np.load(path) as fixture:
            trace = compute_adaptive_recal_trace()
            assert np.array_equal(
                fixture["arrivals_sha256"], trace["arrivals_sha256"]
            ), "the seeded arrival trace itself drifted"
            for key in self.FIXTURE_KEYS:
                _assert_matches(
                    f"adaptive/recal/{key}", fixture[key], trace[key]
                )

    def test_adaptive_metadata_pins_the_scenario(self):
        from golden import regenerate

        with np.load(fixture_path("adaptive", "recal")) as fixture:
            assert (
                int(fixture["meta_requests"]) == regenerate.ADAPTIVE_REQUESTS
            )
            assert (
                int(fixture["meta_arrival_seed"])
                == regenerate.ADAPTIVE_ARRIVAL_SEED
            )
            assert int(fixture["meta_weight_seed"]) == regenerate.WEIGHT_SEED
            assert int(fixture["meta_cores"]) == regenerate.ADAPTIVE_CORES
            assert (
                float(fixture["meta_smoothing"])
                == regenerate.ADAPTIVE_SMOOTHING
            )
            assert (
                float(fixture["meta_lead_fraction"])
                == regenerate.ADAPTIVE_LEAD_FRACTION
            )
            assert (
                float(fixture["meta_error_threshold"])
                == regenerate.ADAPTIVE_ERROR_THRESHOLD
            )

    def test_adaptive_fixture_genuinely_controls(self):
        """Sanity: the controller really steered — decisions fired,
        every firing bought downtime, and the smoothed estimate the
        gates consumed genuinely differs from the raw error (the EWMA
        is not a pass-through at the capture settings)."""
        with np.load(fixture_path("adaptive", "recal")) as fixture:
            assert len(fixture["decision_time_s"]) > 0
            assert int(fixture["num_recalibrations"]) > 0
            assert fixture["core_downtime_s"].sum() > 0.0
            times = fixture["decision_time_s"]
            assert np.all(np.diff(times) >= 0.0)
            assert not np.array_equal(
                fixture["decision_smoothed"], fixture["decision_error"]
            )


class TestClusterVectorizedGolden:
    """PR 10: the canonical capped two-tenant cluster trace.

    The fixture pins the frozen-allocation fast path's full observable
    surface — per-lane batch plans, per-request streams, occupancy-cap
    shed sets, busy ledgers, percentiles — so any change to the lane
    decomposition, the closed-form admission walk, or its verification
    tiers shows up as a bit difference.  The multi-tenant differential
    pins in ``test_vectorized_kernel.py`` extend the guard to the
    reference event loop.
    """

    TENANTS = ("interactive", "batch")
    STREAM_KEYS = (
        "dispatch_s",
        "completion_s",
        "shed_arrival_s",
        "batch_first_request",
        "batch_sizes",
        "batch_dispatch_s",
        "batch_completion_s",
        "core_busy_s",
        "percentiles_s",
    )

    def test_cluster_trace_matches_golden_fixture(self):
        from golden.regenerate import compute_cluster_vectorized_trace

        path = fixture_path("cluster", "vectorized")
        assert path.exists(), (
            f"missing golden fixture {path}; run "
            "`PYTHONPATH=src python tests/golden/regenerate.py`"
        )
        with np.load(path) as fixture:
            trace = compute_cluster_vectorized_trace()
            assert np.array_equal(
                fixture["arrivals_sha256"], trace["arrivals_sha256"]
            ), "the seeded arrival traces themselves drifted"
            for tenant in self.TENANTS:
                for key in self.STREAM_KEYS:
                    _assert_matches(
                        f"cluster/vectorized/{tenant}/{key}",
                        fixture[f"{tenant}_{key}"],
                        trace[f"{tenant}_{key}"],
                    )

    def test_cluster_metadata_pins_the_scenario(self):
        from golden import regenerate

        with np.load(fixture_path("cluster", "vectorized")) as fixture:
            assert int(fixture["meta_requests"]) == regenerate.CLUSTER_REQUESTS
            assert (
                int(fixture["meta_arrival_seed"])
                == regenerate.CLUSTER_ARRIVAL_SEED
            )
            assert (
                float(fixture["meta_rate_rps"]) == regenerate.CLUSTER_RATE_RPS
            )
            assert (
                int(fixture["meta_pool_size"]) == regenerate.CLUSTER_POOL_SIZE
            )

    def test_cluster_fixture_genuinely_sheds_and_batches(self):
        """Sanity: the capture scenario really stresses the admission
        walk — the interactive cap sheds, survivors still batch, and
        the conservation law holds within the fixture itself."""
        with np.load(fixture_path("cluster", "vectorized")) as fixture:
            shed = fixture["interactive_shed_arrival_s"]
            assert shed.size > 0
            assert np.all(np.diff(shed) >= 0.0)
            sizes = fixture["interactive_batch_sizes"]
            assert sizes.max() > 1  # survivors genuinely batch
            assert (
                sizes.sum() + shed.size
                == fixture["interactive_dispatch_s"].size + shed.size
            )
            assert np.all(fixture["batch_batch_sizes"] <= 16)
            assert fixture["batch_shed_arrival_s"].size == 0
