"""Tests for the functional photonic convolution engine and PCNNA facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import PCNNA, PhotonicConvolution
from repro.core.config import PCNNAConfig
from repro.nn import build_lenet5, functional as F
from repro.photonics.noise import NoiseConfig
from repro.workloads import alexnet_layer


class TestIdealExactness:
    def test_matrix_method_exact(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 8, 8))
        k = rng.normal(size=(4, 3, 3, 3))
        out = PhotonicConvolution(method="matrix").convolve(x, k)
        assert np.allclose(out, F.conv2d(x, k), atol=1e-10)

    def test_device_method_exact(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 6, 6))
        k = rng.normal(size=(3, 2, 3, 3))
        out = PhotonicConvolution(method="device").convolve(x, k)
        assert np.allclose(out, F.conv2d(x, k), atol=1e-9)

    def test_device_and_matrix_agree(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 7, 7))
        k = rng.normal(size=(2, 1, 3, 3))
        device = PhotonicConvolution(method="device").convolve(x, k, 2, 1)
        matrix = PhotonicConvolution(method="matrix").convolve(x, k, 2, 1)
        assert np.allclose(device, matrix, atol=1e-9)

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        stride=st.integers(min_value=1, max_value=2),
        padding=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=30, deadline=None)
    def test_exactness_property(self, seed, stride, padding):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, 6, 6))
        k = rng.normal(size=(3, 2, 3, 3))
        out = PhotonicConvolution().convolve(x, k, stride, padding)
        assert np.allclose(out, F.conv2d(x, k, stride, padding), atol=1e-9)

    def test_signed_inputs_handled(self):
        # Inputs spanning negative values exercise the affine encoding.
        rng = np.random.default_rng(3)
        x = rng.uniform(-5, -1, size=(1, 5, 5))  # strictly negative
        k = rng.normal(size=(2, 1, 2, 2))
        out = PhotonicConvolution().convolve(x, k)
        assert np.allclose(out, F.conv2d(x, k), atol=1e-9)

    def test_positive_inputs_with_padding(self):
        # Strictly positive inputs + zero padding: the affine range must
        # be extended to contain the padding zeros.
        rng = np.random.default_rng(4)
        x = rng.uniform(2, 3, size=(1, 5, 5))
        k = rng.normal(size=(2, 1, 3, 3))
        out = PhotonicConvolution().convolve(x, k, padding=1)
        assert np.allclose(out, F.conv2d(x, k, padding=1), atol=1e-9)

    def test_constant_input(self):
        x = np.full((1, 4, 4), 2.5)
        k = np.random.default_rng(5).normal(size=(2, 1, 2, 2))
        out = PhotonicConvolution().convolve(x, k)
        assert np.allclose(out, F.conv2d(x, k), atol=1e-9)

    def test_zero_kernels(self):
        x = np.random.default_rng(6).normal(size=(1, 4, 4))
        k = np.zeros((2, 1, 2, 2))
        out = PhotonicConvolution().convolve(x, k)
        assert np.allclose(out, 0.0, atol=1e-12)


class TestValidationAndModes:
    def test_shape_errors(self):
        engine = PhotonicConvolution()
        with pytest.raises(ValueError):
            engine.convolve(np.zeros((4, 4)), np.zeros((1, 1, 2, 2)))
        with pytest.raises(ValueError):
            engine.convolve(np.zeros((2, 4, 4)), np.zeros((1, 3, 2, 2)))

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError):
            PhotonicConvolution(method="quantum")

    def test_auto_uses_device_when_noisy(self):
        config = PCNNAConfig(noise=NoiseConfig(enabled=True))
        engine = PhotonicConvolution(config)
        assert engine._resolved_method() == "device"

    def test_auto_uses_matrix_when_ideal(self):
        assert PhotonicConvolution()._resolved_method() == "matrix"

    def test_quantization_bounds_error(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(2, 6, 6))
        k = rng.normal(size=(3, 2, 3, 3))
        out = PhotonicConvolution(quantize=True).convolve(x, k)
        ref = F.conv2d(x, k)
        rel = np.max(np.abs(out - ref)) / np.max(np.abs(ref))
        # 16-bit DAC + 12-bit ADC keeps relative error small but nonzero.
        assert 0.0 < rel < 1e-2

    def test_noise_degrades_gracefully(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(1, 6, 6))
        k = rng.normal(size=(2, 1, 3, 3))
        ref = F.conv2d(x, k)

        def rel_error(sigma):
            config = PCNNAConfig(
                noise=NoiseConfig(enabled=True, ring_tuning_sigma=sigma, seed=9)
            )
            out = PhotonicConvolution(config).convolve(x, k)
            return np.max(np.abs(out - ref)) / np.max(np.abs(ref))

        assert rel_error(0.001) < rel_error(0.05)


class TestPCNNAFacade:
    def test_report_layer(self):
        accelerator = PCNNA()
        report = accelerator.report_layer(alexnet_layer("conv4"))
        assert report.name == "conv4"
        assert report.analysis.rings_per_bank == 3456
        assert report.timing.pipelined_time_s > 0

    def test_run_network_matches_electronic(self):
        net = build_lenet5(seed=2)
        accelerator = PCNNA()
        x = np.random.default_rng(10).normal(size=(1, 32, 32))
        photonic = accelerator.run_network(net, x)
        electronic = net.forward(x)
        assert np.allclose(photonic, electronic, atol=1e-9)

    def test_run_network_shape_check(self):
        net = build_lenet5()
        with pytest.raises(ValueError):
            PCNNA().run_network(net, np.zeros((1, 30, 30)))

    def test_convolve_facade(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(1, 5, 5))
        k = rng.normal(size=(2, 1, 3, 3))
        assert np.allclose(PCNNA().convolve(x, k), F.conv2d(x, k), atol=1e-9)

    def test_network_with_bias(self):
        from repro.nn.layers import Conv2D, ReLU
        from repro.nn.network import Network

        rng = np.random.default_rng(12)
        net = Network(
            [
                Conv2D(
                    rng.normal(size=(3, 1, 3, 3)),
                    bias=rng.normal(size=3),
                    name="conv",
                ),
                ReLU(),
            ],
            input_shape=(1, 6, 6),
        )
        x = rng.normal(size=(1, 6, 6))
        assert np.allclose(
            PCNNA().run_network(net, x), net.forward(x), atol=1e-9
        )
