"""Tests for the vectorized batched photonic execution engine.

The contract under test (see ``docs/architecture.md``):

* in ideal mode the vectorized engine is *bit-identical* to the retained
  wave-by-wave reference loop (``np.array_equal``, i.e. atol=0), across
  strides, paddings, batch sizes, and rectangular inputs;
* in noisy mode the two engines are statistically consistent — same
  error scale against the ideal result, seeded reproducibility;
* the batched entry points (``conv2d_batch``, batched ``convolve``,
  batched ``run_network``, ``compute_batch``) agree with their
  per-image / per-wave counterparts.
"""

import numpy as np
import pytest

from repro.core.accelerator import PCNNA, PhotonicConvolution
from repro.core.batching import network_batch_timing_simulated
from repro.core.config import PCNNAConfig
from repro.core.timing import simulate_layer, simulate_layer_batch
from repro.nn import build_lenet5, functional as F
from repro.photonics.broadcast_weight import BroadcastAndWeightLayer
from repro.photonics.noise import NoiseConfig, realistic
from repro.workloads import alexnet_layer


def _engines():
    vectorized = PhotonicConvolution(method="device", mode="vectorized")
    reference = PhotonicConvolution(method="device", mode="reference")
    return vectorized, reference


class TestIdealBitEquality:
    @pytest.mark.parametrize(
        ("stride", "padding", "batch"),
        [(1, 0, 1), (2, 1, 3), (1, 2, 2), (3, 0, 4), (2, 2, 1)],
    )
    def test_vectorized_equals_reference_exactly(self, stride, padding, batch):
        rng = np.random.default_rng(stride * 100 + padding * 10 + batch)
        x = rng.normal(size=(batch, 2, 9, 7))
        k = rng.normal(size=(3, 2, 3, 3))
        vectorized, reference = _engines()
        out_vec = vectorized.convolve(x, k, stride, padding)
        out_ref = reference.convolve(x, k, stride, padding)
        assert np.array_equal(out_vec, out_ref)

    def test_single_image_bit_equal(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 8, 8))
        k = rng.normal(size=(4, 3, 3, 3))
        vectorized, reference = _engines()
        assert np.array_equal(
            vectorized.convolve(x, k), reference.convolve(x, k)
        )

    def test_batch_of_one_equals_unbatched(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 6, 6))
        k = rng.normal(size=(3, 2, 3, 3))
        engine = PhotonicConvolution(method="device")
        assert np.array_equal(
            engine.convolve(x[None], k, 2, 1)[0], engine.convolve(x, k, 2, 1)
        )

    def test_quantized_paths_bit_equal(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 2, 7, 7))
        k = rng.normal(size=(3, 2, 3, 3))
        vec = PhotonicConvolution(method="device", quantize=True)
        ref = PhotonicConvolution(
            method="device", quantize=True, mode="reference"
        )
        assert np.array_equal(vec.convolve(x, k), ref.convolve(x, k))

    def test_vectorized_matches_numpy_reference(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 3, 8, 8))
        k = rng.normal(size=(5, 3, 3, 3))
        out = PhotonicConvolution(method="device").convolve(x, k, 2, 1)
        assert np.allclose(out, F.conv2d_batch(x, k, 2, 1), atol=1e-9)

    def test_matrix_method_matches_device_batched(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 1, 6, 6))
        k = rng.normal(size=(2, 1, 3, 3))
        device = PhotonicConvolution(method="device").convolve(x, k)
        matrix = PhotonicConvolution(method="matrix").convolve(x, k)
        assert np.allclose(device, matrix, atol=1e-9)


class TestBatchedShapes:
    def test_batched_output_shape(self):
        x = np.zeros((5, 2, 8, 8))
        k = np.zeros((3, 2, 3, 3))
        out = PhotonicConvolution().convolve(x, k, stride=1, padding=1)
        assert out.shape == (5, 3, 8, 8)

    def test_unbatched_output_stays_3d(self):
        out = PhotonicConvolution().convolve(
            np.zeros((2, 6, 6)), np.zeros((3, 2, 3, 3))
        )
        assert out.shape == (3, 4, 4)

    def test_rejects_bad_rank(self):
        engine = PhotonicConvolution()
        with pytest.raises(ValueError):
            engine.convolve(np.zeros((4, 4)), np.zeros((1, 1, 2, 2)))
        with pytest.raises(ValueError):
            engine.convolve(np.zeros((1, 1, 2, 4, 4)), np.zeros((1, 2, 2, 2)))

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="at least one image"):
            PhotonicConvolution().convolve(
                np.zeros((0, 2, 6, 6)), np.zeros((3, 2, 3, 3))
            )

    def test_rejects_channel_mismatch(self):
        with pytest.raises(ValueError):
            PhotonicConvolution().convolve(
                np.zeros((2, 3, 4, 4)), np.zeros((1, 2, 2, 2))
            )

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            PhotonicConvolution(mode="turbo")

    def test_compute_batch_shape_check(self):
        layer = BroadcastAndWeightLayer(5, 3)
        layer.set_weight_matrix(np.zeros((3, 5)))
        with pytest.raises(ValueError):
            layer.compute_batch(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            layer.compute_batch(np.zeros((2, 2, 5)))
        assert layer.compute_batch(np.zeros((2, 5))).shape == (2, 3)

    def test_mac_unit_compute_batch_rejects_3d(self):
        from repro.photonics.broadcast_weight import PhotonicMacUnit

        unit = PhotonicMacUnit(4)
        unit.set_weights(np.zeros(4))
        with pytest.raises(ValueError):
            unit.compute_batch(np.full((2, 2, 4), 0.5))


class TestNoisyConsistency:
    @staticmethod
    def _noisy_out(mode, seed):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(2, 1, 6, 6))
        k = rng.normal(size=(2, 1, 3, 3))
        config = PCNNAConfig(noise=realistic(seed=seed))
        engine = PhotonicConvolution(config, method="device", mode=mode)
        return engine.convolve(x, k), F.conv2d_batch(x, k)

    def test_noisy_engines_statistically_consistent(self):
        out_vec, ideal = self._noisy_out("vectorized", seed=5)
        out_ref, _ = self._noisy_out("reference", seed=5)
        err_vec = out_vec - ideal
        err_ref = out_ref - ideal
        # Both engines are noisy (non-exact) but stay on the same error
        # scale — the noise is injected per wave in both.
        assert np.any(err_vec != 0.0) and np.any(err_ref != 0.0)
        rms_vec = float(np.sqrt(np.mean(err_vec**2)))
        rms_ref = float(np.sqrt(np.mean(err_ref**2)))
        assert rms_vec < 3.0 * rms_ref
        assert rms_ref < 3.0 * rms_vec
        scale = float(np.max(np.abs(ideal)))
        assert np.max(np.abs(err_vec)) < 0.5 * scale

    def test_noisy_vectorized_reproducible(self):
        first, _ = self._noisy_out("vectorized", seed=6)
        second, _ = self._noisy_out("vectorized", seed=6)
        other, _ = self._noisy_out("vectorized", seed=7)
        assert np.array_equal(first, second)
        assert not np.array_equal(first, other)

    def test_tuning_error_degrades_both_engines(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(1, 6, 6))
        k = rng.normal(size=(2, 1, 3, 3))
        ideal = F.conv2d(x, k)
        for mode in ("vectorized", "reference"):
            config = PCNNAConfig(
                noise=NoiseConfig(enabled=True, ring_tuning_sigma=0.01, seed=8)
            )
            out = PhotonicConvolution(config, method="device", mode=mode)
            assert not np.allclose(out.convolve(x, k), ideal, atol=1e-12)


class TestBatchedFunctional:
    def test_conv2d_batch_matches_per_image(self):
        rng = np.random.default_rng(12)
        x = rng.normal(size=(3, 2, 7, 9))
        k = rng.normal(size=(4, 2, 3, 3))
        bias = rng.normal(size=4)
        batched = F.conv2d_batch(x, k, 2, 1, bias)
        stacked = np.stack([F.conv2d(m, k, 2, 1, bias) for m in x])
        assert np.allclose(batched, stacked, atol=1e-10)

    def test_conv2d_batch_shape_checks(self):
        with pytest.raises(ValueError):
            F.conv2d_batch(np.zeros((2, 4, 4)), np.zeros((1, 2, 2, 2)))
        with pytest.raises(ValueError):
            F.conv2d_batch(
                np.zeros((1, 2, 4, 4)), np.zeros((1, 2, 2, 2)), bias=np.zeros(3)
            )
        with pytest.raises(ValueError, match="at least one image"):
            F.conv2d_batch(np.zeros((0, 2, 4, 4)), np.zeros((1, 2, 2, 2)))


class TestBatchedNetwork:
    def test_run_network_batched_matches_per_image(self):
        net = build_lenet5(seed=2)
        accelerator = PCNNA()
        x = np.random.default_rng(13).normal(size=(3, 1, 32, 32))
        batched = accelerator.run_network(net, x)
        per_image = np.stack(
            [accelerator.run_network(net, image) for image in x]
        )
        assert batched.shape == (3, 10)
        assert np.allclose(batched, per_image, atol=1e-9)

    def test_run_network_batched_shape_check(self):
        net = build_lenet5()
        with pytest.raises(ValueError):
            PCNNA().run_network(net, np.zeros((2, 1, 30, 30)))


class TestBatchedTiming:
    def test_simulate_layer_batch_composition(self):
        spec = alexnet_layer("conv3")
        single = simulate_layer(spec)
        batch = simulate_layer_batch(spec, 16)
        assert batch.total_time_s == pytest.approx(
            single.weight_load_time_s + 16 * single.pipelined_time_s
        )
        assert batch.per_image_s < simulate_layer_batch(spec, 1).per_image_s

    def test_simulate_layer_batch_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            simulate_layer_batch(alexnet_layer("conv1"), 0)

    def test_network_batch_timing_simulated(self):
        from repro.workloads import alexnet_conv_specs

        specs = alexnet_conv_specs()[:2]
        small = network_batch_timing_simulated(specs, 1)
        large = network_batch_timing_simulated(specs, 64)
        assert large.images_per_s > small.images_per_s
        assert large.weight_load_fraction < small.weight_load_fraction
        with pytest.raises(ValueError):
            network_batch_timing_simulated(specs, 0)
