"""Differential pins: the vectorized kernel vs the reference event loop.

PR 6 rebuilds the pluginless serving hot path on array ops (batch
planning, max-plus completion scans, cumulative busy accounting) while
keeping the original per-event loop alive as ``mode="reference"``.  The
contract is *bit-identity*, not tolerance: every dispatch, completion,
batch record, busy total, and percentile must match the reference loop
byte for byte, on every batching policy crossed with every arrival
process, including the degenerate traces (single request, simultaneous
arrivals) where the closed forms are easiest to get subtly wrong.

These pins are what lets the vectorized path be the default (``"auto"``)
without re-validating every downstream consumer: if the streams are
bit-identical, so is everything computed from them.
"""

import numpy as np
import pytest

from repro.core.cluster import (
    ClusterSimulator,
    ClusterTenant,
    ElasticReallocation,
    RoutingPolicy,
    simulate_cluster_serving,
)
from repro.core.faults import (
    DegradedServingSimulator,
    FaultEvent,
    FaultSchedule,
    RecalibrationPolicy,
)
from repro.core.simkernel import (
    KERNEL_MODES,
    BatchTable,
    EventLoopKernel,
    KernelPlugin,
    plan_batches,
)
from repro.core.traffic import (
    BatchingPolicy,
    PipelineServiceModel,
    ServingSimulator,
    replay_on_engine,
    simulate_serving,
)
from repro.workloads import (
    CLUSTER_MIXES,
    cluster_mix,
    lenet5_conv_specs,
    make_arrivals,
    poisson_arrivals,
    serving_network,
)

POLICIES = (
    ("fifo", BatchingPolicy.fifo()),
    ("dynamic", BatchingPolicy.dynamic(8, 1e-4)),
    ("fixed", BatchingPolicy.fixed(6)),
)
PATTERNS = ("poisson", "mmpp", "diurnal")


def lenet_model(num_cores: int = 3) -> PipelineServiceModel:
    return PipelineServiceModel.from_specs(lenet5_conv_specs(), num_cores)


def both_modes(model, policy, arrivals):
    ref = ServingSimulator(model, policy, mode="reference").run(arrivals)
    vec = ServingSimulator(model, policy, mode="vectorized").run(arrivals)
    return ref, vec


def assert_bit_identical(ref, vec):
    """Byte-level equality of every stream and metric in two reports."""
    assert ref.arrival_s.tobytes() == vec.arrival_s.tobytes()
    assert ref.dispatch_s.tobytes() == vec.dispatch_s.tobytes()
    assert ref.completion_s.tobytes() == vec.completion_s.tobytes()
    assert ref.batches == vec.batches
    assert vec.batches == ref.batches  # symmetric: BatchTable vs tuple
    assert ref.core_busy_s == vec.core_busy_s
    assert ref.p50_s == vec.p50_s
    assert ref.p95_s == vec.p95_s
    assert ref.p99_s == vec.p99_s
    assert ref.makespan_s == vec.makespan_s
    assert ref.throughput_rps == vec.throughput_rps
    assert ref.core_utilization == vec.core_utilization
    assert ref.max_queue_depth == vec.max_queue_depth
    assert ref.mean_queue_depth == vec.mean_queue_depth


class TestBitIdentityAcrossPoliciesAndArrivals:
    """All three policies x all three arrival processes, several loads."""

    @pytest.mark.parametrize(
        ("policy_name", "policy"), POLICIES, ids=[p[0] for p in POLICIES]
    )
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("load", [0.4, 1.0, 4.0])
    def test_streams_match_reference(self, policy_name, policy, pattern, load):
        model = lenet_model()
        rate = load * model.capacity_rps(max(policy.max_batch, 1))
        arrivals = make_arrivals(pattern, rate, 400, seed=13)
        ref, vec = both_modes(model, policy, arrivals)
        assert_bit_identical(ref, vec)

    @pytest.mark.parametrize("num_cores", [1, 2, 3])
    def test_streams_match_across_core_counts(self, num_cores):
        model = lenet_model(num_cores)
        policy = BatchingPolicy.dynamic(4, 1e-4)
        arrivals = poisson_arrivals(2.0 * model.capacity_rps(4), 600, seed=5)
        ref, vec = both_modes(model, policy, arrivals)
        assert_bit_identical(ref, vec)

    @pytest.mark.parametrize(
        ("policy_name", "policy"), POLICIES, ids=[p[0] for p in POLICIES]
    )
    def test_zero_wait_and_tiny_wait_budgets(self, policy_name, policy):
        """max_wait_s edge cases route through every planner branch."""
        model = lenet_model()
        arrivals = poisson_arrivals(4.0 * model.capacity_rps(4), 300, seed=3)
        for extra in (
            BatchingPolicy.dynamic(4, 0.0),
            BatchingPolicy.dynamic(2, 1e-9),
            policy,
        ):
            ref, vec = both_modes(model, extra, arrivals)
            assert_bit_identical(ref, vec)


class TestDegenerateTraces:
    """Empty / single-request / all-tie traces, both modes."""

    @pytest.mark.parametrize("mode", ["reference", "vectorized"])
    def test_empty_trace_rejected_in_both_modes(self, mode):
        model = lenet_model()
        sim = ServingSimulator(model, BatchingPolicy.fifo(), mode=mode)
        with pytest.raises(ValueError, match="empty"):
            sim.run(np.array([]))

    @pytest.mark.parametrize(
        ("policy_name", "policy"), POLICIES, ids=[p[0] for p in POLICIES]
    )
    def test_single_request_trace(self, policy_name, policy):
        model = lenet_model()
        ref, vec = both_modes(model, policy, np.array([0.125]))
        assert_bit_identical(ref, vec)
        assert len(vec.batches) == 1
        assert vec.batches[0].size == 1

    @pytest.mark.parametrize(
        ("policy_name", "policy"), POLICIES, ids=[p[0] for p in POLICIES]
    )
    @pytest.mark.parametrize(
        "trace",
        [
            np.zeros(17),
            np.full(9, 1.5),
            np.repeat([0.0, 1e-6, 2e-6], 5),
        ],
        ids=["all-zero", "all-equal", "tie-clusters"],
    )
    def test_simultaneous_arrival_ties(self, policy_name, policy, trace):
        model = lenet_model()
        ref, vec = both_modes(model, policy, trace)
        assert_bit_identical(ref, vec)

    def test_quantized_trace_with_many_ties(self):
        """Rounding a Poisson trace to a coarse grid forces tie runs."""
        model = lenet_model()
        rng = np.random.default_rng(42)
        raw = np.cumsum(rng.exponential(1e-4, size=500))
        trace = np.round(raw, 3)  # many arrivals collapse onto the grid
        for _, policy in POLICIES:
            ref, vec = both_modes(model, policy, trace)
            assert_bit_identical(ref, vec)


class TestTieOrderContract:
    """plan_dispatch / plan_batches order simultaneous arrivals by index.

    Requests that arrive at the same instant are served in trace order
    (FIFO within the tie), so the k-th request of a tie cluster always
    lands in the same batch slot in both modes.  This is the regression
    pin for the tie-order contract documented on ``plan_dispatch``.
    """

    def test_ties_fill_batches_in_trace_order(self):
        model = lenet_model()
        policy = BatchingPolicy.fixed(4)
        trace = np.array([0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 5.0])
        heads, sizes, disp = plan_batches(trace, policy, model)
        # Two full tie batches in index order, then the straggler.
        assert heads.tolist() == [0, 4, 8]
        assert sizes.tolist() == [4, 4, 1]
        run = EventLoopKernel(model, policy, mode="vectorized").run(trace)
        ref = EventLoopKernel(model, policy, mode="reference").run(trace)
        assert [b.first_request for b in run.batches] == [0, 4, 8]
        assert run.batches == ref.batches
        # Per-request streams stay sorted within the tie cluster.
        assert run.dispatch_s.tobytes() == ref.dispatch_s.tobytes()
        assert run.completion_s.tobytes() == ref.completion_s.tobytes()

    def test_dynamic_ties_dispatch_as_one_full_batch(self):
        model = lenet_model()
        policy = BatchingPolicy.dynamic(4, 1e-3)
        trace = np.array([1.0, 1.0, 1.0, 1.0, 9.0])
        heads, sizes, _ = plan_batches(trace, policy, model)
        assert heads.tolist() == [0, 4]
        assert sizes.tolist() == [4, 1]


class TestModeValidation:
    def test_unknown_mode_rejected(self):
        model = lenet_model()
        with pytest.raises(ValueError, match="mode"):
            EventLoopKernel(model, BatchingPolicy.fifo(), mode="turbo")
        with pytest.raises(ValueError, match="mode"):
            ServingSimulator(model, BatchingPolicy.fifo(), mode="turbo")

    def test_vectorized_with_plugins_rejected(self):
        model = lenet_model()
        with pytest.raises(ValueError, match="plugin"):
            EventLoopKernel(
                model,
                BatchingPolicy.fifo(),
                plugins=(KernelPlugin(),),
                mode="vectorized",
            )

    def test_auto_with_plugins_falls_back_to_reference(self):
        """A plugin-bearing auto run is the reference loop, bit for bit."""
        model = lenet_model()
        policy = BatchingPolicy.dynamic(4, 1e-4)
        arrivals = poisson_arrivals(2.0 * model.capacity_rps(4), 200, seed=9)
        plugged = EventLoopKernel(
            model, policy, plugins=(KernelPlugin(),), mode="auto"
        ).run(arrivals)
        ref = EventLoopKernel(model, policy, mode="reference").run(arrivals)
        assert plugged.dispatch_s.tobytes() == ref.dispatch_s.tobytes()
        assert plugged.completion_s.tobytes() == ref.completion_s.tobytes()
        assert plugged.batches == ref.batches

    def test_kernel_modes_tuple_is_the_contract(self):
        assert KERNEL_MODES == ("auto", "vectorized", "reference")


class TestZeroMagnitudeFaultPin:
    """The PR 4 zero-magnitude pin, re-asserted against vectorized mode.

    A zero-magnitude fault schedule runs the *reference* loop (the fault
    plugin forces the fallback), so comparing it to a plain vectorized
    run pins reference ≡ vectorized through the full degraded-serving
    stack, not just the bare kernel.
    """

    def zero_schedule(self, horizon_s: float) -> FaultSchedule:
        return FaultSchedule(
            name="zero",
            events=(
                FaultEvent("thermal_ramp", 0, 0.1 * horizon_s, 0.2),
                FaultEvent("tia_droop", 1, 0.3 * horizon_s, 0.3),
                FaultEvent(
                    "dead_rings", 2, 0.5 * horizon_s, 1.0, rings=(3, 4)
                ),
            ),
        ).scaled(0.0)

    def test_zero_schedule_matches_vectorized_plain_run(self):
        model = lenet_model()
        policy = BatchingPolicy.dynamic(8, 1e-3)
        arrivals = poisson_arrivals(2.0 * model.capacity_rps(8), 800, seed=17)
        vec = ServingSimulator(model, policy, mode="vectorized").run(arrivals)
        zero = DegradedServingSimulator(
            model,
            policy,
            self.zero_schedule(float(arrivals[-1])),
            recalibration=RecalibrationPolicy(),
            specs=lenet5_conv_specs(),
        ).run(arrivals)
        assert vec.dispatch_s.tobytes() == zero.dispatch_s.tobytes()
        assert vec.completion_s.tobytes() == zero.completion_s.tobytes()
        assert vec.batches == tuple(zero.batches)
        assert vec.core_busy_s == zero.core_busy_s
        assert vec.p50_s == zero.p50_s
        assert vec.p99_s == zero.p99_s

    def test_degraded_simulator_rejects_vectorized_mode(self):
        model = lenet_model()
        sim = DegradedServingSimulator(
            model,
            BatchingPolicy.fifo(),
            self.zero_schedule(1.0),
            mode="vectorized",
        )
        with pytest.raises(ValueError, match="plugin|vectorized"):
            sim.run(np.array([0.0, 0.5]))


class TestSingleTenantClusterPin:
    """A lone fault-free tenant collapses to one pluginless kernel run."""

    def make_tenant(self, policy=None):
        return ClusterTenant(
            name="solo",
            specs=lenet5_conv_specs(),
            policy=policy or BatchingPolicy.dynamic(4, 1e-4),
        )

    def test_vectorized_matches_reference_cluster(self):
        tenant = self.make_tenant()
        arrivals = {"solo": poisson_arrivals(3e4, 500, seed=23)}
        ref = simulate_cluster_serving(
            [tenant], arrivals, pool_size=3, mode="reference"
        )
        vec = simulate_cluster_serving(
            [tenant], arrivals, pool_size=3, mode="vectorized"
        )
        auto = simulate_cluster_serving([tenant], arrivals, pool_size=3)
        for other in (vec, auto):
            r, o = ref.tenant("solo"), other.tenant("solo")
            assert r.arrival_s.tobytes() == o.arrival_s.tobytes()
            assert r.dispatch_s.tobytes() == o.dispatch_s.tobytes()
            assert r.completion_s.tobytes() == o.completion_s.tobytes()
            assert tuple(r.batches) == tuple(o.batches)
            assert r.core_busy_s == o.core_busy_s
            assert np.array_equal(r.batch_num_cores, o.batch_num_cores)
            assert np.array_equal(r.accuracy_proxy, o.accuracy_proxy)
            assert r.shed_arrival_s.size == o.shed_arrival_s.size == 0
            assert other.reallocations == ref.reallocations == ()
            assert other.recalibrations == ref.recalibrations == ()

    def test_vectorized_mode_demands_vectorizable_shape(self):
        """Mid-loop feedback (elastic reallocation) rejects vectorized."""
        tenants = [
            self.make_tenant(),
            ClusterTenant(
                name="other",
                specs=lenet5_conv_specs(),
                policy=BatchingPolicy.fifo(),
            ),
        ]
        arrivals = {
            "solo": poisson_arrivals(1e4, 50, seed=1),
            "other": poisson_arrivals(1e4, 50, seed=2),
        }
        sim = ClusterSimulator(
            tenants,
            pool_size=3,
            elastic=ElasticReallocation(),
            mode="vectorized",
        )
        with pytest.raises(ValueError, match="frozen-allocation"):
            sim.run(arrivals)

    def test_elastic_single_tenant_stays_on_reference(self):
        """Elastic reallocation is feedback — auto must not vectorize."""
        tenant = self.make_tenant()
        arrivals = {"solo": poisson_arrivals(3e4, 200, seed=7)}
        elastic = ElasticReallocation(pressure_ratio=1.0, min_queue=1)
        ref = simulate_cluster_serving(
            [tenant], arrivals, pool_size=3, elastic=elastic, mode="reference"
        )
        auto = simulate_cluster_serving(
            [tenant], arrivals, pool_size=3, elastic=elastic
        )
        r, a = ref.tenant("solo"), auto.tenant("solo")
        assert r.dispatch_s.tobytes() == a.dispatch_s.tobytes()
        assert r.completion_s.tobytes() == a.completion_s.tobytes()


class TestMultiTenantClusterPin:
    """Frozen-allocation multi-tenant runs decompose into independent
    lanes; the vectorized path must match the reference event loop
    byte for byte on every stream — including shed accounting under
    occupancy caps and batch composition under arrival ties."""

    @staticmethod
    def assert_cluster_identical(ref, vec):
        assert ref.pool_size == vec.pool_size
        assert ref.routing == vec.routing
        assert len(ref.tenants) == len(vec.tenants)
        for r, v in zip(ref.tenants, vec.tenants):
            assert r.tenant == v.tenant
            assert r.arrival_s.tobytes() == v.arrival_s.tobytes()
            assert r.dispatch_s.tobytes() == v.dispatch_s.tobytes()
            assert r.completion_s.tobytes() == v.completion_s.tobytes()
            assert (
                r.offered_arrival_s.tobytes() == v.offered_arrival_s.tobytes()
            )
            assert r.shed_arrival_s.tobytes() == v.shed_arrival_s.tobytes()
            assert tuple(r.batches) == tuple(v.batches)
            assert r.core_busy_s == v.core_busy_s
            assert np.array_equal(r.batch_num_cores, v.batch_num_cores)
            assert np.array_equal(r.accuracy_proxy, v.accuracy_proxy)
        assert ref.reallocations == vec.reallocations == ()
        assert ref.recalibrations == vec.recalibrations == ()

    @pytest.mark.parametrize("mix_name", CLUSTER_MIXES)
    @pytest.mark.parametrize(
        "routing",
        [RoutingPolicy.weighted_fair(), RoutingPolicy.priority()],
        ids=["weighted-fair", "priority"],
    )
    def test_named_mixes_bit_identical(self, mix_name, routing):
        """Every named mix x routing kind: caps, weights, priorities."""
        tenants, arrivals = cluster_mix(mix_name, 4e4, 1200, seed=5)
        ref = simulate_cluster_serving(
            tenants,
            arrivals,
            pool_size=len(tenants) + 1,
            routing=routing,
            mode="reference",
        )
        vec = simulate_cluster_serving(
            tenants,
            arrivals,
            pool_size=len(tenants) + 1,
            routing=routing,
            mode="vectorized",
        )
        self.assert_cluster_identical(ref, vec)

    def test_tight_caps_shed_identically(self):
        """Deep overload against shallow occupancy caps: the admission
        walk's shed set and the survivors' batches must match the
        reference judgment for judgment."""
        specs = lenet5_conv_specs()
        tenants = [
            ClusterTenant(
                "greedy",
                specs,
                BatchingPolicy.dynamic(8, 1e-4),
                queue_cap=2,
            ),
            ClusterTenant(
                "frugal",
                specs,
                BatchingPolicy.fixed(4),
                queue_cap=3,
            ),
        ]
        arrivals = {
            "greedy": poisson_arrivals(2e5, 3000, seed=31),
            "frugal": poisson_arrivals(1e5, 1500, seed=32),
        }
        ref = simulate_cluster_serving(
            tenants, arrivals, pool_size=2, mode="reference"
        )
        vec = simulate_cluster_serving(
            tenants, arrivals, pool_size=2, mode="vectorized"
        )
        self.assert_cluster_identical(ref, vec)
        assert ref.tenant("greedy").num_shed > 0  # the cap actually bit

    def test_tied_arrivals_under_caps_bit_identical(self):
        """Tie-order regression: quantized traces pile simultaneous
        arrivals onto cap boundaries, where one mis-ordered judgment
        shifts every later batch."""
        specs = lenet5_conv_specs()
        rng = np.random.default_rng(77)
        base = np.cumsum(rng.exponential(1.0 / 5e4, 120))
        trace = np.sort(rng.choice(base, size=400))  # heavy duplication
        tenants = [
            ClusterTenant(
                "tied",
                specs,
                BatchingPolicy.dynamic(4, 2e-4),
                queue_cap=3,
            ),
            ClusterTenant("steady", specs, BatchingPolicy.fifo()),
        ]
        arrivals = {
            "tied": trace,
            "steady": poisson_arrivals(3e4, 200, seed=78),
        }
        ref = simulate_cluster_serving(
            tenants, arrivals, pool_size=2, mode="reference"
        )
        vec = simulate_cluster_serving(
            tenants, arrivals, pool_size=2, mode="vectorized"
        )
        self.assert_cluster_identical(ref, vec)

    def test_lane_fallback_is_exercised_and_exact(self, monkeypatch):
        """When the speculative admission plan fails verification the
        lane falls back to the scalar reference loop — prove the
        fallback fires on a hostile trace and stays bit-identical."""
        specs = lenet5_conv_specs()
        calls = []
        original = ClusterSimulator._serve_lane_reference

        def counting(self, index, tenant, trace):
            calls.append(tenant.name)
            return original(self, index, tenant, trace)

        monkeypatch.setattr(
            ClusterSimulator, "_serve_lane_reference", counting
        )
        rng = np.random.default_rng(101)
        base = np.cumsum(rng.exponential(1.0 / 2e4, 60))
        trace = np.sort(rng.choice(base, size=300))
        tenants = [
            ClusterTenant(
                "hostile",
                specs,
                BatchingPolicy.dynamic(4, 2e-4),
                queue_cap=3,
            )
        ]
        vec = simulate_cluster_serving(
            tenants, {"hostile": trace}, pool_size=1, mode="vectorized"
        )
        assert calls  # the plan was rejected at least once
        monkeypatch.undo()
        ref = simulate_cluster_serving(
            tenants, {"hostile": trace}, pool_size=1, mode="reference"
        )
        self.assert_cluster_identical(ref, vec)


class TestReplayFidelity:
    """Vectorized batch streams drive the engine replay identically."""

    def test_replay_on_engine_bit_identical(self):
        network = serving_network("lenet5", seed=7)
        report_ref = simulate_serving(
            network, poisson_arrivals(2e4, 40, seed=3), BatchingPolicy.fixed(4),
            num_cores=2, mode="reference",
        )
        report_vec = simulate_serving(
            network, poisson_arrivals(2e4, 40, seed=3), BatchingPolicy.fixed(4),
            num_cores=2, mode="vectorized",
        )
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(40, 1, 32, 32))
        out_ref = replay_on_engine(network, report_ref, inputs)
        out_vec = replay_on_engine(network, report_vec, inputs)
        assert len(out_ref) == len(out_vec)
        for a, b in zip(out_ref, out_vec):
            assert np.array_equal(a, b)


class TestBatchTable:
    """The array-backed batch sequence honours the Sequence contract."""

    def table(self):
        model = lenet_model()
        arrivals = poisson_arrivals(3e4, 100, seed=31)
        run = EventLoopKernel(
            model, BatchingPolicy.dynamic(4, 1e-4), mode="vectorized"
        ).run(arrivals)
        return run.batches

    def test_sequence_protocol(self):
        table = self.table()
        assert isinstance(table, BatchTable)
        assert len(table) > 1
        assert table[0].first_request == 0
        assert table[-1] == table[len(table) - 1]
        assert isinstance(table[1:3], tuple)
        assert table[1:3] == tuple(table)[1:3]
        with pytest.raises(IndexError):
            table[len(table)]

    def test_equality_vs_tuple_and_hash(self):
        table = self.table()
        assert table == tuple(table.records)
        assert tuple(table.records) == tuple(table)
        assert table == self.table()
        assert table != tuple(table.records)[:-1]
        with pytest.raises(TypeError):
            hash(table)

    def test_records_cached(self):
        table = self.table()
        assert table.records is table.records

    def test_repr_is_compact(self):
        table = self.table()
        text = repr(table)
        assert "BatchTable" in text
        assert str(len(table)) in text


class TestMaxPlusScanExactness:
    """The scan helpers are exact even when speculation fails.

    Serving traces are benign (monotone arrivals, positive service
    times), so the speculative pass almost always verifies clean; these
    adversarial wide-magnitude inputs force the verify/repair machinery
    to actually run, pinning the property the bit-identity contract
    rests on: the scans equal the scalar fold on *any* float input.
    """

    @staticmethod
    def scalar_scan(e, d):
        y = np.empty(e.size)
        y[0] = e[0] + d[0]
        for k in range(1, e.size):
            y[k] = max(float(e[k]), float(y[k - 1])) + float(d[k])
        return y

    @staticmethod
    def scalar_scan_const(e, d, y0):
        y = np.empty(e.size)
        y[0] = y0
        for k in range(1, e.size):
            y[k] = max(float(e[k]), float(y[k - 1]) + d)
        return y

    def test_scan_exact_on_wide_magnitude_inputs(self):
        from repro.core.simkernel import _maxplus_scan

        rng = np.random.default_rng(0)
        for _ in range(100):
            n = int(rng.integers(2, 60))
            e = np.sort(
                np.cumsum(np.abs(rng.normal(size=n)))
                * 10.0 ** rng.uniform(-8, 8, size=n)
            )
            d = np.abs(rng.normal(size=n)) * 10.0 ** rng.uniform(
                -8, 8, size=n
            )
            assert np.array_equal(
                _maxplus_scan(e.copy(), d.copy()), self.scalar_scan(e, d)
            )

    def test_const_scan_exact_on_wide_magnitude_inputs(self):
        from repro.core.simkernel import _maxplus_scan_const

        rng = np.random.default_rng(1)
        for _ in range(100):
            n = int(rng.integers(2, 60))
            e = np.sort(
                np.cumsum(np.abs(rng.normal(size=n)))
                * 10.0 ** rng.uniform(-8, 8, size=n)
            )
            d = float(np.abs(rng.normal()) * 10.0 ** rng.uniform(-4, 4))
            y0 = max(float(e[0]), 0.0)
            assert np.array_equal(
                _maxplus_scan_const(e.copy(), d, y0),
                self.scalar_scan_const(e, d, y0),
            )
