"""Tests for layer objects and the sequential Network container."""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.network import Network
from repro.nn import functional as F


def make_conv(k=2, c=1, m=3, **kwargs) -> Conv2D:
    rng = np.random.default_rng(0)
    return Conv2D(rng.normal(size=(k, c, m, m)), **kwargs)


class TestConv2DLayer:
    def test_forward_matches_functional(self):
        rng = np.random.default_rng(1)
        layer = make_conv(stride=2, padding=1)
        x = rng.normal(size=(1, 6, 6))
        assert np.allclose(
            layer.forward(x), F.conv2d(x, layer.weights, 2, 1)
        )

    def test_output_shape_matches_forward(self):
        layer = make_conv(k=3, c=2, m=3, padding=1)
        x = np.zeros((2, 7, 7))
        assert layer.output_shape(x.shape) == layer.forward(x).shape

    def test_output_shape_rejects_wrong_channels(self):
        layer = make_conv(c=2)
        with pytest.raises(ValueError):
            layer.output_shape((3, 7, 7))

    def test_rejects_non_square_kernels(self):
        with pytest.raises(ValueError):
            Conv2D(np.zeros((1, 1, 2, 3)))

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            make_conv(stride=0)

    def test_num_parameters(self):
        layer = Conv2D(np.zeros((4, 3, 5, 5)), bias=np.zeros(4))
        assert layer.num_parameters() == 4 * 3 * 25 + 4

    def test_conv_spec(self):
        layer = make_conv(k=5, c=2, m=3, stride=2, padding=1)
        spec = layer.conv_spec(input_side=13)
        assert spec.n == 13
        assert spec.m == 3
        assert spec.nc == 2
        assert spec.num_kernels == 5
        assert spec.s == 2
        assert spec.p == 1


class TestSimpleLayers:
    def test_relu(self):
        assert np.allclose(ReLU().forward(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_relu_shape_passthrough(self):
        assert ReLU().output_shape((3, 4, 5)) == (3, 4, 5)

    def test_maxpool_shape(self):
        assert MaxPool2D(2).output_shape((3, 8, 8)) == (3, 4, 4)

    def test_maxpool_overlapping_shape(self):
        assert MaxPool2D(3, stride=2).output_shape((96, 55, 55)) == (96, 27, 27)

    def test_maxpool_rejects_too_small(self):
        with pytest.raises(ValueError):
            MaxPool2D(5).output_shape((1, 3, 3))

    def test_flatten(self):
        layer = Flatten()
        assert layer.output_shape((2, 3, 4)) == (24,)
        assert layer.forward(np.zeros((2, 3, 4))).shape == (24,)

    def test_dense_shapes(self):
        layer = Dense(np.zeros((5, 8)))
        assert layer.output_shape((8,)) == (5,)
        with pytest.raises(ValueError):
            layer.output_shape((7,))

    def test_dense_forward(self):
        rng = np.random.default_rng(2)
        W = rng.normal(size=(3, 6))
        x = rng.normal(size=6)
        assert np.allclose(Dense(W).forward(x), W @ x)

    def test_softmax_layer(self):
        out = Softmax().forward(np.array([0.0, 1.0]))
        assert out.sum() == pytest.approx(1.0)

    def test_lrn_layer_shape(self):
        assert LocalResponseNorm().output_shape((8, 3, 3)) == (8, 3, 3)

    def test_lrn_rejects_bad_size(self):
        with pytest.raises(ValueError):
            LocalResponseNorm(size=0)


class TestNetwork:
    def make_net(self) -> Network:
        rng = np.random.default_rng(3)
        return Network(
            [
                Conv2D(rng.normal(size=(4, 1, 3, 3)), name="conv1"),
                ReLU(name="relu1"),
                MaxPool2D(2, name="pool1"),
                Flatten(name="flatten"),
                Dense(rng.normal(size=(10, 4 * 3 * 3)), name="fc"),
                Softmax(name="softmax"),
            ],
            input_shape=(1, 8, 8),
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Network([], input_shape=(1, 4, 4))

    def test_shape_inference(self):
        net = self.make_net()
        assert net.output_shape == (10,)
        assert net.layer_shapes[0] == (1, 8, 8)
        assert net.layer_shapes[1] == (4, 6, 6)

    def test_incompatible_layers_raise_at_construction(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            Network(
                [
                    Conv2D(rng.normal(size=(4, 3, 3, 3))),  # Expects 3 channels.
                ],
                input_shape=(1, 8, 8),
            )

    def test_forward_output_shape(self):
        net = self.make_net()
        out = net.forward(np.random.default_rng(5).normal(size=(1, 8, 8)))
        assert out.shape == (10,)
        assert out.sum() == pytest.approx(1.0)

    def test_forward_rejects_wrong_input(self):
        with pytest.raises(ValueError):
            self.make_net().forward(np.zeros((1, 9, 9)))

    def test_forward_recorded(self):
        net = self.make_net()
        activations = net.forward_recorded(np.zeros((1, 8, 8)))
        assert len(activations) == len(net.layers)
        assert activations[0].layer_name == "conv1"
        assert activations[-1].output.shape == (10,)

    def test_num_parameters(self):
        net = self.make_net()
        assert net.num_parameters() == 4 * 9 + 10 * 36

    def test_conv_layers_and_specs(self):
        net = self.make_net()
        convs = net.conv_layers()
        assert len(convs) == 1
        specs = net.conv_specs()
        assert specs[0].n == 8
        assert specs[0].num_kernels == 4

    def test_summary_lists_layers(self):
        summary = self.make_net().summary()
        assert "conv1" in summary
        assert "total parameters" in summary
