"""Per-rule tests for ``repro.lint`` against the fixture corpus.

The fixtures under ``tests/lint_fixtures/`` are self-describing: a
trailing ``# EXPECT: CODE[,CODE]`` marks a line the linter must flag,
and a ``# EXPECT-FILE: CODE@LINE`` comment (``LINE`` may be ``*``)
declares findings whose reported line is fixed by the rule rather than
by the marked statement.  The harness diffs the declared corpus against
one real :func:`repro.lint.run_lint` pass, so every rule is pinned by
positive *and* negative examples and a fixture edit that shifts a line
updates the expectation with it.
"""

import json
import re
from collections import Counter
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    BaselineEntry,
    BaselineError,
    JSON_REPORT_VERSION,
    format_baseline,
    load_baseline,
    render_json,
    render_text,
    rule_codes,
    run_lint,
    scan_pragmas,
)
from repro.lint.baseline import _entries_from_data, _parse_toml_subset
from repro.lint.cli import main
from repro.lint.registry import Rule, checkable_rules, register

FIXTURES = Path(__file__).parent / "lint_fixtures"

_INLINE = re.compile(r"#.*\bEXPECT:\s*(?P<codes>[A-Z0-9,]+)")
_FILE_LEVEL = re.compile(r"#\s*EXPECT-FILE:\s*(?P<code>[A-Z0-9]+)@(?P<line>\d+|\*)")


def _declared_expectations():
    """(exact, wildcard) findings declared by the fixture corpus."""
    exact = []
    wildcard = []
    for path in sorted(FIXTURES.rglob("*.py")):
        rel = path.relative_to(FIXTURES).as_posix()
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = _INLINE.search(line)
            if match:
                for code in match.group("codes").split(","):
                    exact.append((rel, code, lineno))
            for match in _FILE_LEVEL.finditer(line):
                if match.group("line") == "*":
                    wildcard.append((rel, match.group("code")))
                else:
                    exact.append(
                        (rel, match.group("code"), int(match.group("line")))
                    )
    return exact, wildcard


@pytest.fixture(scope="module")
def fixture_result():
    """One lint pass over the whole corpus, no baseline."""
    return run_lint([FIXTURES], root=FIXTURES, baseline=None)


class TestFixtureCorpus:
    def test_findings_match_declarations_exactly(self, fixture_result):
        """Every declared finding fires; nothing undeclared fires."""
        exact, wildcard = _declared_expectations()
        actual = Counter(
            (f.path, f.code, f.line) for f in fixture_result.findings
        )
        for rel, code in wildcard:
            matching = [key for key in actual if key[:2] == (rel, code)]
            assert matching, f"expected a {code} finding in {rel}"
            actual[matching[0]] -= 1
        actual -= Counter()  # drop zeroed entries
        assert actual == Counter(exact)

    def test_every_rule_code_has_fixture_coverage(self, fixture_result):
        """Meta-test: no rule ships without a fixture that triggers it."""
        exact, wildcard = _declared_expectations()
        exercised = {code for _, code, _ in exact}
        exercised.update(code for _, code in wildcard)
        assert exercised == set(rule_codes())
        assert fixture_result.rule_codes == tuple(sorted(rule_codes()))

    def test_findings_are_sorted_and_located(self, fixture_result):
        keys = [f.sort_key() for f in fixture_result.findings]
        assert keys == sorted(keys)
        for finding in fixture_result.findings:
            assert finding.location().startswith(f"{finding.path}:")
            assert not Path(finding.path).is_absolute()

    def test_messages_carry_enclosing_symbol(self, fixture_result):
        def first(path, code):
            return next(
                f
                for f in fixture_result.findings
                if (f.path, f.code) == (path, code)
            )

        finding = first("det001_bad.py", "DET001")
        assert finding.symbol == "draw_legacy"
        finding = first("plug001_bad.py", "PLUG001")
        assert finding.symbol == "TypoPlugin"
        assert "did you mean `on_batch_complete`" in finding.message


class TestRegistry:
    def test_register_rejects_missing_and_duplicate_codes(self):
        with pytest.raises(ValueError, match="no code"):
            register(type("NoCode", (Rule,), {}))
        with pytest.raises(ValueError, match="duplicate"):
            register(type("DupCode", (Rule,), {"code": "DET001"}))

    def test_engine_level_rules_are_not_checkable(self):
        assert list(Rule().check(None, None)) == []
        codes = {rule.code for rule in checkable_rules()}
        assert codes == set(rule_codes()) - {"LINT000", "LINT001", "LINT002"}


class TestPragmas:
    def test_good_fixture_pragmas_suppress_and_are_used(self, fixture_result):
        suppressed = {
            (finding.path, finding.code): pragma
            for finding, pragma in fixture_result.suppressed
        }
        for key in [
            ("pragma_good.py", "DET002"),
            ("pragma_good.py", "BIT001"),
            ("bit001_good.py", "BIT001"),
            ("api002_good.py", "API002"),
        ]:
            assert key in suppressed, f"expected {key} to be pragma-waived"
            assert suppressed[key].used
            assert suppressed[key].justification

    def test_trailing_pragma_covers_only_its_own_line(self):
        pragmas = scan_pragmas(
            "x = 1  # repro: allow[DET001] trailing\ny = 2\n"
        )
        (pragma,) = pragmas
        assert pragma.covers("DET001", 1)
        assert not pragma.covers("DET001", 2)
        assert not pragma.covers("DET002", 1)

    def test_comment_block_pragma_skips_continuation_comments(self):
        source = (
            "# repro: allow[BIT001,DET002] a justification that wraps\n"
            "# onto a second comment line\n"
            "total = sum(values)\n"
        )
        (pragma,) = scan_pragmas(source)
        assert pragma.codes == ("BIT001", "DET002")
        assert pragma.target_line == 3
        assert pragma.covers("DET002", 3)

    def test_docstring_examples_are_not_pragmas(self):
        source = '"""Example: ``# repro: allow[DET001] why``."""\nx = 1\n'
        assert scan_pragmas(source) == []

    def test_engine_findings_cannot_be_pragma_waived(self, tmp_path):
        """A waiver that silences the waiver checker is no contract."""
        target = tmp_path / "sneaky.py"
        target.write_text(
            "# repro: allow[LINT002] trying to waive the waiver checker\n"
            "x = 1  # repro: allow[DET001] leftover\n",
            encoding="utf-8",
        )
        result = run_lint([target], root=tmp_path, baseline=None)
        assert [f.code for f in result.findings] == ["LINT002", "LINT002"]
        assert not result.suppressed


class TestBaseline:
    def test_round_trip_via_cli(self, tmp_path, capsys):
        """--write-baseline absorbs the corpus; a rerun is then clean."""
        baseline = tmp_path / "lint_baseline.toml"
        assert (
            main(
                [
                    str(FIXTURES),
                    "--root",
                    str(FIXTURES),
                    "--no-baseline",
                    "--write-baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        assert baseline.exists()
        assert (
            main(
                [
                    str(FIXTURES),
                    "--root",
                    str(FIXTURES),
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_stale_entries_are_reported_not_fatal(self, capsys):
        stale = Baseline(
            entries=[
                BaselineEntry(
                    code="DET001",
                    path="nowhere.py",
                    reason="tracking a ghost",
                )
            ]
        )
        kept, baselined, stale_entries = stale.apply([])
        assert kept == [] and baselined == []
        assert stale_entries == stale.entries
        result = run_lint(
            [FIXTURES / "benchmarks"], root=FIXTURES, baseline=None
        )
        result.stale_baseline = stale_entries
        assert "stale baseline entry" in render_text(result)

    def test_line_pinned_entry_matches_only_that_line(self, fixture_result):
        finding = next(
            f for f in fixture_result.findings if f.code == "DET001"
        )
        hit = BaselineEntry(
            code=finding.code,
            path=finding.path,
            reason="pinned",
            line=finding.line,
        )
        miss = BaselineEntry(
            code=finding.code,
            path=finding.path,
            reason="pinned elsewhere",
            line=finding.line + 1,
        )
        assert hit.matches(finding)
        assert not miss.matches(finding)

    def test_subset_parser_agrees_with_writer(self, fixture_result):
        text = format_baseline(
            fixture_result.findings[:3], reason="inherited at rollout"
        )
        data = _parse_toml_subset(text)
        assert data["version"] == 1
        assert len(data["suppress"]) == 3
        entry = data["suppress"][0]
        assert set(entry) == {"code", "path", "line", "reason"}
        parsed = _entries_from_data(data, "test")
        assert parsed.entries[0].reason == "inherited at rollout"

    def test_subset_parser_handles_comments_and_rejects_garbage(self):
        data = _parse_toml_subset(
            "# header comment\n"
            "version = 1\n"
            "\n"
            "[[suppress]]\n"
            'code = "DET001"  # trailing comment\n'
            'path = "a # b.py"\n'
            'reason = "kept"\n'
        )
        assert data["suppress"][0]["path"] == "a # b.py"
        with pytest.raises(BaselineError):
            _parse_toml_subset("version = [1]\n")

    def test_malformed_baselines_are_rejected(self, tmp_path):
        with pytest.raises(BaselineError, match="version"):
            _entries_from_data({"version": 2}, "test")
        with pytest.raises(BaselineError, match="reason"):
            _entries_from_data(
                {"suppress": [{"code": "DET001", "path": "x.py"}]}, "test"
            )
        with pytest.raises(BaselineError, match="code"):
            _entries_from_data({"suppress": [{"path": "x.py"}]}, "test")
        bad = tmp_path / "lint_baseline.toml"
        bad.write_text("version = \n", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_absent_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "missing.toml").entries == []


class TestReports:
    def test_json_report_schema(self, fixture_result):
        report = render_json(fixture_result)
        assert report["version"] == JSON_REPORT_VERSION
        assert report["tool"] == "repro.lint"
        assert report["ok"] is False
        summary = report["summary"]
        assert summary["findings"] == len(fixture_result.findings)
        assert summary["suppressed"] == len(fixture_result.suppressed)
        assert summary["files"] == fixture_result.files_checked
        assert sum(summary["by_rule"].values()) == summary["findings"]
        for entry in report["findings"]:
            assert set(entry) >= {"code", "path", "line", "col", "message"}
        for entry in report["suppressed"]:
            assert entry["justification"]
        json.dumps(report)  # must be serializable as-is

    def test_text_report_lists_locations(self, fixture_result):
        text = render_text(fixture_result, verbose=True)
        for finding in fixture_result.findings:
            assert finding.location() in text
        assert "suppressed by pragma" in text


class TestCli:
    def test_dirty_corpus_exits_1(self, capsys):
        code = main([str(FIXTURES), "--root", str(FIXTURES), "--no-baseline"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "det001_bad.py" in out

    def test_clean_tree_exits_0(self, capsys):
        code = main(
            [str(FIXTURES / "benchmarks"), "--root", str(FIXTURES)]
        )
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format_prints_the_report(self, capsys):
        code = main(
            [
                str(FIXTURES),
                "--root",
                str(FIXTURES),
                "--no-baseline",
                "--format",
                "json",
            ]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False

    def test_output_writes_the_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "lint_report.json"
        code = main(
            [
                str(FIXTURES),
                "--root",
                str(FIXTURES),
                "--no-baseline",
                "--output",
                str(artifact),
            ]
        )
        assert code == 1
        capsys.readouterr()
        report = json.loads(artifact.read_text(encoding="utf-8"))
        assert report["version"] == JSON_REPORT_VERSION
        assert report["summary"]["findings"] > 0

    def test_list_rules_prints_every_code(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in rule_codes():
            assert code in out

    def test_missing_path_exits_2(self, capsys):
        assert main(["no/such/path"]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("version = 99\n", encoding="utf-8")
        code = main(
            [str(FIXTURES), "--root", str(FIXTURES), "--baseline", str(bad)]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err
