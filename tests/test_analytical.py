"""Tests for the paper's analytical framework — including every worked
number the paper states (section V)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analytical as A
from repro.core.config import PCNNAConfig
from repro.nn.shapes import ConvLayerSpec
from repro.workloads import alexnet_conv_specs, alexnet_layer


class TestPaperWorkedNumbers:
    """Every number the paper's text states, reproduced exactly."""

    def test_conv1_unfiltered_is_5_2_billion(self):
        rings = A.microrings_unfiltered(alexnet_layer("conv1"))
        assert rings == 150_528 * 96 * 363
        assert rings == pytest.approx(5.2e9, rel=1e-2)

    def test_conv1_filtered_is_35_thousand(self):
        rings = A.microrings_filtered(alexnet_layer("conv1"))
        assert rings == 34_848
        assert rings == pytest.approx(35_000, rel=1e-2)

    def test_conv1_savings_exceed_150k(self):
        savings = A.ring_savings_factor(alexnet_layer("conv1"))
        assert savings == 150_528
        assert savings > 150_000

    def test_conv4_bank_is_3456_rings(self):
        assert A.rings_per_kernel_bank(alexnet_layer("conv4")) == 3456

    def test_conv4_bank_area_is_2_2_mm2(self):
        area = A.bank_area_mm2(3456)
        assert area == pytest.approx(2.16, rel=1e-2)
        assert area == pytest.approx(2.2, rel=0.05)

    def test_conv4_dac_updates_approx_116(self):
        updates = A.dac_updates_per_location(alexnet_layer("conv4"))
        assert updates == pytest.approx(115.2)
        assert round(updates) == 115  # The paper rounds to "~116".

    def test_conv4_has_most_kernel_weights(self):
        specs = alexnet_conv_specs()
        weights = {spec.name: spec.total_weights for spec in specs}
        assert max(weights, key=weights.__getitem__) == "conv4"


class TestRingCountEquations:
    @given(
        n=st.integers(min_value=3, max_value=32),
        m=st.integers(min_value=1, max_value=5),
        nc=st.integers(min_value=1, max_value=16),
        k=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_eq4_eq5_relationship(self, n, m, nc, k):
        if m > n:
            return
        spec = ConvLayerSpec("t", n=n, m=m, nc=nc, num_kernels=k)
        unfiltered = A.microrings_unfiltered(spec)
        filtered = A.microrings_filtered(spec)
        # eq. 4 / eq. 5 == Ninput, always.
        assert unfiltered == filtered * spec.n_input
        # Filtered scales linearly in K.
        assert filtered == k * spec.n_kernel

    def test_filtered_grows_linearly_with_kernels(self):
        base = ConvLayerSpec("t", n=13, m=3, nc=8, num_kernels=10)
        double = ConvLayerSpec("t", n=13, m=3, nc=8, num_kernels=20)
        assert A.microrings_filtered(double) == 2 * A.microrings_filtered(base)

    def test_area_zero_rings(self):
        assert A.bank_area_mm2(0) == 0.0


class TestExecutionTimeEquations:
    def test_eq7_optical_times(self):
        # Nlocs / 5 GHz for each AlexNet layer.
        expected_ns = {"conv1": 605.0, "conv2": 145.8, "conv3": 33.8,
                       "conv4": 33.8, "conv5": 33.8}
        for spec in alexnet_conv_specs():
            time_ns = A.optical_core_time_s(spec) * 1e9
            assert time_ns == pytest.approx(expected_ns[spec.name], rel=1e-2)

    def test_eq7_independent_of_kernel_count(self):
        few = ConvLayerSpec("t", n=13, m=3, nc=8, num_kernels=2)
        many = ConvLayerSpec("t", n=13, m=3, nc=8, num_kernels=2000)
        assert A.optical_core_time_s(few) == A.optical_core_time_s(many)

    def test_full_system_dac_bound(self):
        spec = alexnet_layer("conv4")
        per_location = A.per_location_dac_time_s(spec)
        assert per_location == pytest.approx(115.2 / 6e9)
        total = A.full_system_time_s(spec)
        assert total == pytest.approx(169 * per_location)

    def test_full_system_never_faster_than_optical_core(self):
        for spec in alexnet_conv_specs():
            assert A.full_system_time_s(spec) >= A.optical_core_time_s(spec)

    def test_fast_clock_floor(self):
        # With enough DACs the optical clock becomes the limit.
        spec = ConvLayerSpec("t", n=8, m=1, nc=1, num_kernels=4)
        config = PCNNAConfig(num_input_dacs=1000)
        assert A.full_system_time_s(spec, config) == pytest.approx(
            A.optical_core_time_s(spec, config)
        )

    def test_adc_bound_variant_larger_for_many_kernels(self):
        spec = alexnet_layer("conv4")  # K = 384 over one 2.8 GSa/s ADC.
        without = A.full_system_time_s(spec, include_adc_bound=False)
        with_adc = A.full_system_time_s(spec, include_adc_bound=True)
        assert with_adc > without

    def test_weight_load_time(self):
        spec = alexnet_layer("conv1")
        # 34 848 weights through one 6 GSa/s DAC.
        assert A.weight_load_time_s(spec) == pytest.approx(34_848 / 6e9)

    def test_kernel_pass_cap(self):
        spec = alexnet_layer("conv4")
        capped = PCNNAConfig(max_parallel_kernels=96)  # 384 kernels -> 4 passes.
        assert A.optical_core_time_s(spec, capped) == pytest.approx(
            4 * A.optical_core_time_s(spec)
        )

    def test_speedup(self):
        assert A.speedup(1.0, 1e-3) == pytest.approx(1000.0)

    def test_speedup_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            A.speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            A.speedup(1.0, -1.0)


class TestLayerAnalysisRollup:
    def test_analyze_layer_consistent(self):
        spec = alexnet_layer("conv3")
        analysis = A.analyze_layer(spec)
        assert analysis.rings_filtered == A.microrings_filtered(spec)
        assert analysis.rings_unfiltered == A.microrings_unfiltered(spec)
        assert analysis.optical_time_s == A.optical_core_time_s(spec)
        assert analysis.macs == spec.macs
        assert analysis.name == "conv3"

    def test_analyze_network_order(self):
        analyses = A.analyze_network(alexnet_conv_specs())
        assert [a.name for a in analyses] == [
            "conv1", "conv2", "conv3", "conv4", "conv5",
        ]

    def test_network_totals(self):
        analyses = A.analyze_network(alexnet_conv_specs())
        totals = A.network_totals(analyses)
        assert totals["optical_time_s"] == pytest.approx(
            sum(a.optical_time_s for a in analyses)
        )
        assert totals["rings_filtered"] == sum(a.rings_filtered for a in analyses)
        # Single-tower (ungrouped) AlexNet convs are ~1.08 G MACs; the
        # grouped original is ~666 M, but the paper's counts (conv4
        # Nkernel = 3456) assume full connectivity.
        assert totals["macs"] == pytest.approx(1.077e9, rel=0.01)
