"""Tests for the NoiseConfig gating logic."""

import pytest

from repro.photonics.noise import IDEAL, NoiseConfig, ideal, realistic


class TestGating:
    def test_default_is_ideal(self):
        noise = NoiseConfig()
        assert not noise.enabled
        assert not noise.shot_noise_active
        assert not noise.thermal_noise_active
        assert not noise.rin_active
        assert not noise.tuning_error_active
        assert not noise.crosstalk_active

    def test_master_switch_gates_everything(self):
        noise = NoiseConfig(
            enabled=False,
            shot_noise=True,
            thermal_noise=True,
            relative_intensity_noise_db_per_hz=-120.0,
            ring_tuning_sigma=0.01,
            crosstalk=True,
        )
        assert not noise.shot_noise_active
        assert not noise.thermal_noise_active
        assert not noise.rin_active
        assert not noise.tuning_error_active
        assert not noise.crosstalk_active

    def test_enabled_activates_selected(self):
        noise = NoiseConfig(enabled=True, shot_noise=True, thermal_noise=False)
        assert noise.shot_noise_active
        assert not noise.thermal_noise_active

    def test_rin_requires_magnitude(self):
        noise = NoiseConfig(enabled=True, relative_intensity_noise_db_per_hz=None)
        assert not noise.rin_active

    def test_tuning_error_requires_positive_sigma(self):
        noise = NoiseConfig(enabled=True, ring_tuning_sigma=0.0)
        assert not noise.tuning_error_active

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            NoiseConfig(ring_tuning_sigma=-0.1)


class TestRng:
    def test_seed_reproducibility(self):
        a = NoiseConfig(enabled=True, seed=42)
        b = NoiseConfig(enabled=True, seed=42)
        assert a.rng.normal() == b.rng.normal()

    def test_different_seeds_differ(self):
        a = NoiseConfig(enabled=True, seed=1)
        b = NoiseConfig(enabled=True, seed=2)
        assert a.rng.normal() != b.rng.normal()

    def test_reseed_resets_stream(self):
        noise = NoiseConfig(enabled=True, seed=0)
        first = noise.rng.normal()
        noise.reseed(0)
        assert noise.rng.normal() == first

    def test_fork_restarts_from_seed(self):
        noise = NoiseConfig(enabled=True, seed=9)
        first = noise.rng.normal()
        # The parent stream has advanced, but every fork restarts.
        assert noise.fork().rng.normal() == first
        assert noise.fork().rng.normal() == first

    def test_fork_leaves_parent_stream_untouched(self):
        noise = NoiseConfig(enabled=True, seed=9)
        fresh = NoiseConfig(enabled=True, seed=9)
        noise.fork().rng.normal()
        noise.fork().rng.normal()
        assert noise.rng.normal() == fresh.rng.normal()

    def test_fork_preserves_switches(self):
        noise = NoiseConfig(
            enabled=True,
            thermal_noise=False,
            ring_tuning_sigma=0.01,
            seed=4,
        )
        forked = noise.fork()
        assert forked.enabled and not forked.thermal_noise
        assert forked.ring_tuning_sigma == 0.01
        assert forked.seed == 4

    def test_fork_keys_give_distinct_reproducible_streams(self):
        noise = NoiseConfig(enabled=True, seed=4)
        a = noise.fork(key=0).rng.normal()
        b = noise.fork(key=1).rng.normal()
        assert a != b
        assert noise.fork(key=0).rng.normal() == a


class TestFactories:
    def test_ideal_factory(self):
        assert not ideal().enabled

    def test_ideal_shared_constant(self):
        assert not IDEAL.enabled

    def test_realistic_has_all_effects(self):
        noise = realistic(seed=3)
        assert noise.enabled
        assert noise.shot_noise_active
        assert noise.thermal_noise_active
        assert noise.rin_active
        assert noise.tuning_error_active
        assert noise.crosstalk_active

    def test_realistic_seeded(self):
        assert realistic(5).seed == 5
