"""Tests for the multi-tenant cluster serving runtime."""

import numpy as np
import pytest

from repro.analysis import (
    CLUSTER_SWEEP_HEADER,
    sweep_cluster_serving,
)
from repro.core import PCNNA
from repro.core.cluster import (
    ClusterSimulator,
    ClusterTenant,
    ElasticReallocation,
    RoutingPolicy,
    allocate_pool,
    replay_tenant_on_engine,
    simulate_cluster_serving,
)
from repro.core.faults import FaultSchedule, RecalibrationPolicy
from repro.core.simkernel import BatchingPolicy
from repro.core.traffic import (
    ServingReport,
    simulate_serving,
    replay_on_engine,
)
from repro.workloads import (
    CLUSTER_MIXES,
    alexnet_conv_specs,
    cluster_mix,
    lenet5_conv_specs,
    poisson_arrivals,
    serving_batch,
    serving_network,
)

ALEXNET = tuple(alexnet_conv_specs())
LENET = tuple(lenet5_conv_specs())


def tenant(name, specs=ALEXNET, policy=None, **kwargs) -> ClusterTenant:
    policy = policy if policy is not None else BatchingPolicy.dynamic(8, 1e-3)
    return ClusterTenant(name, tuple(specs), policy, **kwargs)


class TestClusterTenant:
    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            tenant("")
        with pytest.raises(ValueError, match="conv layer"):
            ClusterTenant("t", (), BatchingPolicy.fifo())
        with pytest.raises(ValueError, match="weight"):
            tenant("t", weight=0.0)
        with pytest.raises(ValueError, match="queue cap"):
            tenant("t", queue_cap=0)

    def test_from_network(self):
        network = serving_network("lenet5")
        built = ClusterTenant.from_network(
            "lenet", network, BatchingPolicy.fifo(), queue_cap=8
        )
        assert built.specs == tuple(network.conv_specs())
        assert built.max_useful_cores == len(network.conv_specs())
        assert built.queue_cap == 8


class TestAllocatePool:
    def test_weights_drive_the_split(self):
        tenants = [tenant("a", weight=3.0), tenant("b", weight=1.0)]
        allocations, free = allocate_pool(tenants, 4)
        assert [len(a) for a in allocations] == [3, 1]
        assert free == []
        # Core ids are contiguous and disjoint.
        assert allocations[0] == [0, 1, 2] and allocations[1] == [3]

    def test_useful_maximum_caps_a_tenant(self):
        tenants = [tenant("small", specs=LENET), tenant("big")]
        allocations, free = allocate_pool(tenants, 8)
        assert len(allocations[0]) == len(LENET)  # capped at conv layers
        assert len(allocations[1]) == len(ALEXNET)
        assert len(free) == 8 - len(LENET) - len(ALEXNET)

    def test_every_tenant_gets_a_core(self):
        tenants = [tenant("a", weight=100.0), tenant("b", weight=0.01)]
        allocations, _ = allocate_pool(tenants, 4)
        assert len(allocations[1]) >= 1

    def test_all_tenants_capped_leaves_the_rest_free(self):
        tenants = [tenant("small", specs=LENET), tenant("big")]
        allocations, free = allocate_pool(tenants, 10)
        assert len(allocations[0]) == len(LENET)
        assert len(allocations[1]) == len(ALEXNET)
        assert len(free) == 10 - len(LENET) - len(ALEXNET)

    def test_pool_too_small(self):
        with pytest.raises(ValueError, match="cannot host"):
            allocate_pool([tenant("a"), tenant("b")], 1)

    def test_priority_routing_allocates_by_rank(self):
        """Weights decide nothing under priority routing: the surplus
        goes to the highest priority first, regardless of order."""
        tenants = [
            tenant("low", weight=4.0, priority=0),
            tenant("high", weight=1.0, priority=2),
        ]
        allocations, free = allocate_pool(
            tenants, 5, RoutingPolicy.priority()
        )
        assert len(allocations[1]) == 4  # high rank fills first
        assert len(allocations[0]) == 1
        assert free == []


class TestPolicyValidation:
    def test_routing(self):
        assert RoutingPolicy.weighted_fair().kind == "weighted-fair"
        assert RoutingPolicy.priority().kind == "priority"
        with pytest.raises(ValueError, match="routing"):
            RoutingPolicy(kind="round-robin")

    def test_elastic(self):
        with pytest.raises(ValueError, match="pressure ratio"):
            ElasticReallocation(pressure_ratio=0.5)
        with pytest.raises(ValueError, match="min queue"):
            ElasticReallocation(min_queue=0)

    def test_simulator_validation(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            ClusterSimulator([], 2)
        with pytest.raises(ValueError, match="unique"):
            ClusterSimulator([tenant("a"), tenant("a")], 4)
        simulator = ClusterSimulator([tenant("a")], 2)
        with pytest.raises(ValueError, match="trace per tenant"):
            simulator.run({"b": poisson_arrivals(100.0, 5)})


class TestSingleTenantDifferential:
    """The acceptance pin: one tenant, zero faults == PR 3 simulator."""

    def test_bit_identical_to_serving_simulator(self):
        network = serving_network("lenet5")
        arrivals = poisson_arrivals(3e4, 400, seed=8)
        policy = BatchingPolicy.dynamic(4, 1e-4)
        base = simulate_serving(network, arrivals, policy, num_cores=2)
        report = simulate_cluster_serving(
            [ClusterTenant.from_network("solo", network, policy)],
            {"solo": arrivals},
            pool_size=2,
        ).tenant("solo")
        assert np.array_equal(base.arrival_s, report.arrival_s)
        assert np.array_equal(base.dispatch_s, report.dispatch_s)
        assert np.array_equal(base.completion_s, report.completion_s)
        assert base.batches == report.batches
        assert base.core_busy_s == report.core_busy_s
        assert base.p50_s == report.p50_s
        assert base.p99_s == report.p99_s
        assert report.num_shed == 0
        assert np.all(report.batch_num_cores == 2)
        assert np.all(report.accuracy_proxy == 0.0)

    def test_bit_identical_to_engine_replay(self):
        network = serving_network("lenet5")
        requests = 10
        inputs = serving_batch(network, requests, seed=9)
        arrivals = poisson_arrivals(3e4, requests, seed=8)
        policy = BatchingPolicy.dynamic(4, 1e-4)
        base = simulate_serving(network, arrivals, policy, num_cores=2)
        cluster = simulate_cluster_serving(
            [ClusterTenant.from_network("solo", network, policy)],
            {"solo": arrivals},
            pool_size=2,
        ).tenant("solo")
        base_outputs = replay_on_engine(network, base, inputs)
        cluster_outputs = replay_tenant_on_engine(network, cluster, inputs)
        assert np.array_equal(base_outputs, cluster_outputs)
        # And both are the per-request single-image answers.
        alone = np.stack(
            [PCNNA().run_network(network, image) for image in inputs]
        )
        assert np.array_equal(cluster_outputs, alone)

    def test_replay_validates_inputs(self):
        network = serving_network("lenet5")
        report = simulate_cluster_serving(
            [ClusterTenant.from_network("solo", network, BatchingPolicy.fifo())],
            {"solo": poisson_arrivals(1e4, 4, seed=0)},
            pool_size=1,
        ).tenant("solo")
        with pytest.raises(ValueError, match="one input per"):
            replay_tenant_on_engine(
                network, report, np.zeros((3, *network.input_shape))
            )


class TestAdmissionControl:
    def test_saturated_capped_tenant_sheds_the_overload(self):
        """Offered 20k req/s against ~13.6k capacity: admission control
        must shed close to the overload fraction and keep the tail
        latency bounded, instead of letting the queue (and p99) grow
        with the trace length."""
        capped = tenant("capped", queue_cap=32)
        arrivals = {"capped": poisson_arrivals(20_000.0, 3000, seed=1)}
        report = simulate_cluster_serving([capped], arrivals, pool_size=2)
        served = report.tenant("capped")
        assert served.num_requests + served.num_shed == served.num_offered
        assert 0.2 < served.shed_fraction < 0.45
        # Bounded tail: at most queue_cap requests ever sit ahead of an
        # admitted one, so p99 is a few batch makespans, not the horizon.
        uncapped = simulate_cluster_serving(
            [tenant("capped")], arrivals, pool_size=2
        ).tenant("capped")
        assert uncapped.num_shed == 0
        assert served.p99_s < 0.2 * uncapped.p99_s

    def test_shed_times_lie_inside_the_offered_trace(self):
        capped = tenant("t", queue_cap=16)
        trace = poisson_arrivals(30_000.0, 1500, seed=4)
        report = simulate_cluster_serving(
            [capped], {"t": trace}, pool_size=2
        ).tenant("t")
        assert report.num_shed > 0
        assert np.all(np.isin(report.shed_arrival_s, trace))
        assert np.all(np.diff(report.shed_arrival_s) >= 0.0)
        # Served + shed partition the offered trace exactly.
        merged = np.sort(
            np.concatenate([report.arrival_s, report.shed_arrival_s])
        )
        assert np.array_equal(merged, trace)

    def test_cap_below_max_batch_caps_the_batches(self):
        capped = tenant(
            "t", policy=BatchingPolicy.dynamic(8, 1e-3), queue_cap=4
        )
        report = simulate_cluster_serving(
            [capped],
            {"t": poisson_arrivals(20_000.0, 500, seed=2)},
            pool_size=2,
        ).tenant("t")
        assert max(batch.size for batch in report.batches) <= 4


class TestRoutingAndElastic:
    @staticmethod
    def _two_tenants(**heavy_kwargs):
        heavy = tenant("heavy", priority=1, **heavy_kwargs)
        light = tenant(
            "light", policy=BatchingPolicy.dynamic(4, 1e-3), priority=0
        )
        arrivals = {
            "heavy": poisson_arrivals(20_000.0, 3000, seed=1),
            "light": poisson_arrivals(500.0, 150, seed=2),
        }
        return heavy, light, arrivals

    def test_priority_routing_allocates_the_surplus_up_front(self):
        heavy, light, arrivals = self._two_tenants()
        report = simulate_cluster_serving(
            [heavy, light],
            arrivals,
            pool_size=4,
            routing=RoutingPolicy.priority(),
        )
        assert report.tenant("heavy").batch_num_cores[0] == 3
        assert np.all(report.tenant("light").batch_num_cores == 1)

    def test_priority_routing_strips_an_equal_priority_donor(self):
        """With equal priorities the first tenant hoards the surplus at
        allocation; once the second one's queue pressure diverges, the
        reallocator strips the idle donor down to its floor of one."""
        light = tenant("light", policy=BatchingPolicy.dynamic(4, 1e-3))
        heavy = tenant("heavy")
        arrivals = {
            "light": poisson_arrivals(500.0, 150, seed=2),
            "heavy": poisson_arrivals(20_000.0, 3000, seed=1),
        }
        report = simulate_cluster_serving(
            [light, heavy],  # light first: it gets the surplus
            arrivals,
            pool_size=4,
            routing=RoutingPolicy.priority(),
            elastic=ElasticReallocation(),
        )
        moves = [
            move
            for move in report.reallocations
            if move.from_tenant == "light"
        ]
        assert moves and moves[0].to_tenant == "heavy"
        assert report.tenant("light").batch_num_cores.min() == 1
        assert report.tenant("heavy").batch_num_cores.max() >= 2

    def test_weighted_fair_guarantees_the_minority_share(self):
        """Under weighted-fair routing the same pressure moves nothing:
        the light tenant's initial share is a floor."""
        heavy, light, arrivals = self._two_tenants()
        report = simulate_cluster_serving(
            [heavy, light],
            arrivals,
            pool_size=4,
            elastic=ElasticReallocation(),
        )
        stripped = [
            move
            for move in report.reallocations
            if move.from_tenant == "light"
            and move.time_s <= report.tenant("light").completion_s.max()
        ]
        assert stripped == []
        assert np.all(report.tenant("light").batch_num_cores == 2)

    def test_finished_tenant_releases_cores_to_the_pressured_one(self):
        heavy = tenant("heavy")
        burst = tenant("burst", policy=BatchingPolicy.dynamic(4, 1e-4))
        arrivals = {
            "heavy": poisson_arrivals(20_000.0, 3000, seed=1),
            "burst": poisson_arrivals(50_000.0, 60, seed=2),  # ends early
        }
        report = simulate_cluster_serving(
            [heavy, burst], arrivals, pool_size=4,
            elastic=ElasticReallocation(),
        )
        grabs = [
            move
            for move in report.reallocations
            if move.from_tenant is None and move.to_tenant == "heavy"
        ]
        assert grabs
        widths = report.tenant("heavy").batch_num_cores
        assert widths[0] == 2 and widths.max() > 2
        assert np.all(np.diff(widths) >= 0)

    def test_pressure_ratio_gates_the_move(self):
        """Two similarly-pressured tenants under a high ratio: the
        reallocator must hold still instead of thrashing cores."""
        a = tenant("a", priority=1)
        b = tenant("b", priority=0)
        arrivals = {
            "a": poisson_arrivals(20_000.0, 1500, seed=1),
            "b": poisson_arrivals(20_000.0, 1500, seed=2),
        }
        report = simulate_cluster_serving(
            [a, b],
            arrivals,
            pool_size=4,
            routing=RoutingPolicy.priority(),
            elastic=ElasticReallocation(pressure_ratio=100.0),
        )
        # Free-core grabs after a tenant finishes are fine; stripping a
        # live donor under a 100x ratio requirement is not.
        assert all(
            move.from_tenant is None for move in report.reallocations
        )

    def test_reallocation_preserves_conservation_and_causality(self):
        heavy, light, arrivals = self._two_tenants()
        report = simulate_cluster_serving(
            [heavy, light],
            arrivals,
            pool_size=4,
            routing=RoutingPolicy.priority(),
            elastic=ElasticReallocation(),
        )
        for sub in report.tenants:
            assert sub.num_requests + sub.num_shed == sub.num_offered
            assert np.all(sub.dispatch_s >= sub.arrival_s)
            assert np.all(sub.completion_s > sub.dispatch_s)
            assert sum(batch.size for batch in sub.batches) == sub.num_requests


class TestFaultedCluster:
    def test_recalibration_downtime_and_proxies_are_visible(self):
        a = tenant("a")
        b = tenant("b", policy=BatchingPolicy.fifo())
        arrivals = {
            "a": poisson_arrivals(5000.0, 600, seed=1),
            "b": poisson_arrivals(1000.0, 150, seed=2),
        }
        horizon = max(float(trace[-1]) for trace in arrivals.values())
        report = simulate_cluster_serving(
            [a, b],
            arrivals,
            pool_size=4,
            schedule=FaultSchedule.uniform_drift(0.3 / horizon, 4),
            recalibration=RecalibrationPolicy(),
        )
        assert len(report.recalibrations) > 0
        assert any(downtime > 0.0 for downtime in report.core_downtime_s)
        assert report.schedule_name is not None
        for sub in report.tenants:
            assert sub.accuracy_proxy.max() > 0.0
            assert len(sub.accuracy_proxy) == len(sub.batches)

    def test_faults_without_recalibration_degrade_unchecked(self):
        a = tenant("a")
        arrivals = {"a": poisson_arrivals(5000.0, 300, seed=1)}
        horizon = float(arrivals["a"][-1])
        report = simulate_cluster_serving(
            [a],
            arrivals,
            pool_size=2,
            schedule=FaultSchedule.uniform_drift(0.5 / horizon, 2),
        )
        assert report.recalibrations == ()
        assert all(d == 0.0 for d in report.core_downtime_s)
        sub = report.tenant("a")
        # The proxy trajectory never improves without the closed loop.
        assert np.all(np.diff(sub.accuracy_proxy) >= 0.0)
        assert sub.accuracy_proxy[-1] > sub.accuracy_proxy[0]
        assert max(report.final_core_errors) > 0.0

    def test_zero_magnitude_schedule_is_bit_identical_to_fault_free(self):
        a = tenant("a")
        b = tenant("b", policy=BatchingPolicy.fifo())
        arrivals = {
            "a": poisson_arrivals(5000.0, 400, seed=1),
            "b": poisson_arrivals(1000.0, 100, seed=2),
        }
        horizon = max(float(trace[-1]) for trace in arrivals.values())
        schedule = FaultSchedule.uniform_drift(0.5 / horizon, 4).scaled(0.0)
        faulted = simulate_cluster_serving(
            [a, b],
            arrivals,
            pool_size=4,
            schedule=schedule,
            recalibration=RecalibrationPolicy(),
        )
        clean = simulate_cluster_serving([a, b], arrivals, pool_size=4)
        for name in ("a", "b"):
            assert faulted.tenant(name).batches == clean.tenant(name).batches
            assert np.array_equal(
                faulted.tenant(name).completion_s,
                clean.tenant(name).completion_s,
            )
        assert faulted.recalibrations == ()
        assert all(d == 0.0 for d in faulted.core_downtime_s)


class TestClusterReport:
    @staticmethod
    def _report():
        tenants, arrivals = cluster_mix("minority-majority", 30_000.0, 800, 3)
        return simulate_cluster_serving(tenants, arrivals, pool_size=2)

    def test_describe_and_aggregates(self):
        report = self._report()
        text = report.describe()
        assert "cluster [weighted-fair]" in text
        assert "majority" in text and "minority" in text
        assert report.num_served + report.num_shed == report.num_offered
        assert report.makespan_s > 0.0
        assert len(report.pool_core_busy_s) == 2
        assert all(0.0 <= u <= 1.0 for u in report.pool_utilization)

    def test_unknown_tenant_raises(self):
        with pytest.raises(KeyError, match="unknown tenant"):
            self._report().tenant("nobody")


class TestEmptyReportPercentiles:
    def test_latency_percentile_raises_on_empty_trace(self):
        """Direct construction can produce an empty report; percentiles
        must fail loudly instead of returning numpy's nan."""
        empty = ServingReport(
            policy=BatchingPolicy.fifo(),
            num_cores=1,
            arrival_s=np.array([]),
            dispatch_s=np.array([]),
            completion_s=np.array([]),
            batches=(),
            core_busy_s=(0.0,),
        )
        with pytest.raises(ValueError, match="no requests"):
            empty.latency_percentile_s(50.0)
        with pytest.raises(ValueError, match="no requests"):
            _ = empty.p99_s


class TestClusterMixesAndSweep:
    def test_every_mix_builds_and_serves(self):
        for name in CLUSTER_MIXES:
            tenants, arrivals = cluster_mix(name, 10_000.0, 300, seed=5)
            assert {t.name for t in tenants} == set(arrivals)
            report = simulate_cluster_serving(
                tenants, arrivals, pool_size=len(tenants) * 2
            )
            for sub in report.tenants:
                assert sub.num_requests + sub.num_shed == sub.num_offered

    def test_mix_is_deterministic_and_validates(self):
        first = cluster_mix("model-zoo", 5000.0, 200, seed=9)
        second = cluster_mix("model-zoo", 5000.0, 200, seed=9)
        for name in first[1]:
            assert np.array_equal(first[1][name], second[1][name])
        with pytest.raises(KeyError):
            cluster_mix("nope", 100.0, 10)
        with pytest.raises(ValueError):
            cluster_mix("model-zoo", 0.0, 10)
        with pytest.raises(ValueError):
            cluster_mix("model-zoo", 100.0, 0)

    def test_pool_size_sweep_rows(self):
        tenants, arrivals = cluster_mix(
            "minority-majority", 30_000.0, 600, seed=3
        )
        points = sweep_cluster_serving(tenants, arrivals, [2, 3])
        assert [point.pool_size for point in points] == [2, 3]
        for point in points:
            rows = point.rows()
            assert len(rows) == len(tenants)
            assert all(len(row) == len(CLUSTER_SWEEP_HEADER) for row in rows)
            assert 0.0 <= point.shed_fraction <= 1.0
        with pytest.raises(ValueError, match="pool size"):
            sweep_cluster_serving(tenants, arrivals, [])
