"""Tests for the SRAM cache and DRAM models."""

import pytest

from repro.electronics.dram import Dram, DramSpec
from repro.electronics.sram import SramCache, SramSpec


class TestSramSpec:
    def test_paper_capacity(self):
        spec = SramSpec()
        assert spec.capacity_bits == 128 * 1024
        assert spec.capacity_words == 8192

    def test_paper_access_time(self):
        assert SramSpec().access_time_s == pytest.approx(7e-9)

    def test_paper_area(self):
        assert SramSpec().area_mm2 == pytest.approx(0.443)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SramSpec(capacity_bits=0)

    def test_rejects_bad_word(self):
        with pytest.raises(ValueError):
            SramSpec(word_bits=-1)


class TestSramCache:
    def test_miss_then_hit(self):
        cache = SramCache()
        assert not cache.read("a")
        cache.write("a")
        assert cache.read("a")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_fifo_eviction(self):
        cache = SramCache(SramSpec(capacity_bits=4 * 16))  # 4 words.
        for key in "abcd":
            cache.write(key)
        cache.write("e")  # Evicts "a".
        assert not cache.contains("a")
        assert cache.contains("e")
        assert cache.stats.evictions == 1

    def test_rewrite_does_not_evict(self):
        cache = SramCache(SramSpec(capacity_bits=2 * 16))
        cache.write("a")
        cache.write("b")
        cache.write("a")
        assert cache.contains("a")
        assert cache.contains("b")
        assert cache.stats.evictions == 0

    def test_occupancy_bounded_by_capacity(self):
        cache = SramCache(SramSpec(capacity_bits=3 * 16))
        for index in range(10):
            cache.write(index)
        assert cache.occupancy == 3

    def test_invalidate(self):
        cache = SramCache()
        cache.write("x")
        cache.invalidate()
        assert not cache.contains("x")
        assert cache.occupancy == 0

    def test_access_time(self):
        cache = SramCache()
        assert cache.access_time_s(3) == pytest.approx(21e-9)

    def test_access_time_rejects_negative(self):
        with pytest.raises(ValueError):
            SramCache().access_time_s(-1)

    def test_active_power(self):
        cache = SramCache()
        # 25 uW/MHz at 100 MHz = 2.5 mW.
        assert cache.active_power_w(100e6) == pytest.approx(2.5e-3)

    def test_active_power_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            SramCache().active_power_w(-1.0)

    def test_hit_rate(self):
        cache = SramCache()
        cache.write("a")
        cache.read("a")
        cache.read("b")
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_no_reads(self):
        assert SramCache().stats.hit_rate == 0.0


class TestDram:
    def test_transfer_time_includes_latency_and_bandwidth(self):
        dram = Dram(DramSpec(bandwidth_bytes_per_s=1e9, access_latency_s=50e-9))
        assert dram.transfer_time_s(1000) == pytest.approx(50e-9 + 1e-6)

    def test_zero_bytes_zero_time(self):
        assert Dram().transfer_time_s(0) == 0.0

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            Dram().transfer_time_s(-1)

    def test_read_write_accounting(self):
        dram = Dram()
        dram.read(100)
        dram.write(200)
        assert dram.stats.bytes_read == 100
        assert dram.stats.bytes_written == 200
        assert dram.stats.total_bytes == 300
        assert dram.stats.transfers == 2

    def test_stream_has_no_fixed_latency(self):
        dram = Dram(DramSpec(bandwidth_bytes_per_s=1e9, access_latency_s=50e-9))
        assert dram.stream_time_s(1000) == pytest.approx(1e-6)

    def test_stream_accounts_traffic(self):
        dram = Dram()
        dram.stream_read(64)
        dram.stream_write(32)
        assert dram.stats.bytes_read == 64
        assert dram.stats.bytes_written == 32

    def test_energy(self):
        dram = Dram(DramSpec(energy_per_byte_j=70e-12))
        dram.read(1000)
        assert dram.energy_j() == pytest.approx(70e-9)

    def test_reset_stats(self):
        dram = Dram()
        dram.read(10)
        dram.reset_stats()
        assert dram.stats.total_bytes == 0

    def test_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            DramSpec(bandwidth_bytes_per_s=0.0)
        with pytest.raises(ValueError):
            DramSpec(access_latency_s=-1.0)
