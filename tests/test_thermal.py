"""Tests for the thermal crosstalk / drift model."""

import numpy as np
import pytest

from repro.photonics.calibration import calibrate_bank
from repro.photonics.microring import MicroringDesign
from repro.photonics.noise import NoiseConfig, ideal
from repro.photonics.thermal import (
    SILICON_THERMAL_SHIFT_HZ_PER_K,
    ThermalModel,
    thermal_weight_error,
)
from repro.photonics.wdm import WdmGrid
from repro.photonics.weight_bank import WeightBank


def make_bank(num_rings=8, **design_kwargs) -> WeightBank:
    return WeightBank(
        WdmGrid(num_rings), MicroringDesign(**design_kwargs), ideal()
    )


class TestThermalModel:
    def test_crosstalk_matrix_shape_and_diagonal(self):
        matrix = ThermalModel(crosstalk_coupling=0.1).crosstalk_matrix(5)
        assert matrix.shape == (5, 5)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_crosstalk_decays_with_distance(self):
        matrix = ThermalModel(crosstalk_coupling=0.2).crosstalk_matrix(6)
        assert matrix[0, 1] == pytest.approx(0.2)
        assert matrix[0, 2] == pytest.approx(0.04)
        assert matrix[0, 5] < matrix[0, 1]

    def test_zero_coupling_is_identity(self):
        matrix = ThermalModel(crosstalk_coupling=0.0).crosstalk_matrix(4)
        assert np.allclose(matrix, np.eye(4))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ThermalModel(crosstalk_coupling=1.0)
        with pytest.raises(ValueError):
            ThermalModel(shift_hz_per_k=0.0)
        with pytest.raises(ValueError):
            ThermalModel().crosstalk_matrix(0)

    def test_crosstalk_matrix_rejects_non_integer_ring_counts(self):
        """Regression: a float count used to build a silently mis-sized
        matrix (np.arange(2.5) has three entries), and bool/negative
        counts slipped through the <= 0 check."""
        model = ThermalModel()
        for bad in (2.5, 3.0, True, False, -1, "4", None):
            with pytest.raises(ValueError, match="ring count|ring"):
                model.crosstalk_matrix(bad)
        # numpy integer counts stay accepted (callers pass array sizes).
        assert model.crosstalk_matrix(np.int64(3)).shape == (3, 3)

    def test_ambient_drift_shifts_all_rings(self):
        bank = make_bank(4)
        bank.set_weights(np.zeros(4))
        before = [ring.detuning_hz for ring in bank.rings]
        # Zero heater coupling isolates the uniform ambient term.
        ThermalModel(crosstalk_coupling=0.0, ambient_drift_k=1.0).apply(bank)
        after = [ring.detuning_hz for ring in bank.rings]
        for b, a in zip(before, after):
            assert a - b == pytest.approx(SILICON_THERMAL_SHIFT_HZ_PER_K)


class TestThermalWeightError:
    def test_no_thermal_effects_no_error(self):
        bank = make_bank()
        error = thermal_weight_error(
            bank, ThermalModel(crosstalk_coupling=0.0), np.full(8, 0.3)
        )
        assert error < 1e-9

    def test_drift_grows_with_temperature(self):
        target = np.full(8, 0.3)
        small = thermal_weight_error(
            make_bank(), ThermalModel(ambient_drift_k=0.05), target
        )
        large = thermal_weight_error(
            make_bank(), ThermalModel(ambient_drift_k=0.5), target
        )
        assert small < large

    def test_heater_crosstalk_causes_error(self):
        target = np.linspace(-0.8, 0.8, 8)
        error = thermal_weight_error(
            make_bank(), ThermalModel(crosstalk_coupling=0.1), target
        )
        assert error > 1e-3

    def test_high_q_more_sensitive_to_drift(self):
        # Narrow linewidth -> the same GHz drift moves further along the
        # Lorentzian flank.
        target = np.full(8, 0.5)
        drift = ThermalModel(ambient_drift_k=0.02)
        low_q = thermal_weight_error(
            make_bank(quality_factor=4_000), drift, target
        )
        high_q = thermal_weight_error(
            make_bank(quality_factor=40_000), drift, target
        )
        assert high_q > low_q


class TestRecalibrationRecovers:
    def test_calibration_compensates_heater_crosstalk(self):
        # With a crosstalk-aware measurement loop, the bank can be re-
        # calibrated after the thermal perturbation is (statically) applied
        # through the command path.
        noise = NoiseConfig(
            enabled=True, shot_noise=False, thermal_noise=False,
            crosstalk=True, seed=0,
        )
        bank = WeightBank(
            WdmGrid(8), MicroringDesign(quality_factor=20_000), noise
        )
        target = np.linspace(-0.6, 0.6, 8)
        result = calibrate_bank(bank, target)
        assert result.converged
        assert result.residual < 1e-6
