"""Randomized invariant tests for the batched execution engine.

PR 2 fixed two batched-vs-single divergences (quantized TIA gain, noise
forking) found by hand; these tests generalize that hunt.  Over random
shapes, strides, paddings, batch sizes, and execution modes they assert
the engine's two load-bearing invariants:

* **batch transparency** — executing a minibatch is *bit-identical* to
  stacking per-image executions, for the photonic convolution (ideal and
  quantized), the batch-native electronic ops, whole random layer
  stacks, and the multi-core pipelined runner;
* **geometry honesty** — ``pool_output_size`` / ``conv_output_side``
  (the shape equations every analytical model consumes) agree with the
  shapes the functional ops actually produce.

Noisy mode intentionally does not promise batch transparency (the noise
stream walks the whole wave stack, see ``docs/architecture.md``); what
it does promise — determinism under a fixed seed, batch-size-independent
per-image encodings — is asserted instead.

PR 4 adds the fault-injection engine; over random fault schedules
(random kinds, onset times, magnitudes, affected rings, recalibration
on/off) the degraded simulator must never deadlock, must conserve
requests, and must keep every latency, proxy, and downtime finite and
causally ordered.

PR 5 adds the multi-tenant cluster runtime; over random tenant mixes
(tenant counts, weights, priorities, queue caps, routing, elastic
reallocation) crossed with random pool-level fault schedules, every
tenant must conserve its offered load (``served + shed = offered``),
never leak requests across tenants, keep latencies finite and causal,
and reproduce bit-identically under the same inputs.

PR 6 vectorizes the pluginless serving hot path; over random (policy,
arrival-process, load, tie-quantization) draws the vectorized kernel
must be *bit-identical* to the retained reference event loop on every
per-request and per-batch stream, conserve requests, and keep dispatch
and completion times causal and monotone.

PR 8 adds the planet-scale fleet runtime; over random (region count ×
tenant mix × fault schedule × routing policy) draws the fleet must
conserve the global offered load (``served + shed = offered`` per
stream and globally), never route a request off its home region under
geo-affinity while the home is healthy, keep every served latency
finite and positive, and reproduce byte-identically under a fixed
seed.

PR 9 adds the adaptive control plane; over random (controller gain ×
fault schedule × tenant mix) draws, runs driven by EWMA recalibration,
burn-rate admission, and pressure-scaled reallocation must still
conserve every tenant's offered load, never leak requests across
tenants, keep latencies finite and causal, reproduce byte-identically
under identical inputs, and log a deterministic decision stream.

All randomness is drawn through seeded ``default_rng`` streams from
hypothesis-chosen seeds, so failures shrink and replay deterministically.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import PCNNA, PhotonicConvolution
from repro.core.adaptive import (
    DECISION_ACTIONS,
    AdaptiveRecalibration,
    BurnRateAdmission,
    PressureController,
    simulate_adaptive_serving,
)
from repro.analysis import sweep_cluster_serving
from repro.core.cluster import (
    ClusterSimulator,
    ClusterTenant,
    ElasticReallocation,
    RoutingPolicy,
    simulate_cluster_serving,
)
from repro.core.config import PCNNAConfig
from repro.core.faults import (
    FAULT_KINDS,
    DegradedServingSimulator,
    FaultEvent,
    FaultSchedule,
    RecalibrationPolicy,
)
from repro.core.fleet import (
    FLEET_ROUTING_KINDS,
    FleetRuntime,
    GlobalRoutingPolicy,
    RegionSpec,
    uniform_rtt,
)
from repro.core.serving import run_network_pipelined
from repro.core.traffic import (
    BatchingPolicy,
    PipelineServiceModel,
    ServingSimulator,
)
from repro.nn import functional as F
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.network import Network
from repro.nn.shapes import conv_output_side, pool_output_size
from repro.photonics.noise import realistic
from repro.workloads import (
    alexnet_conv_specs,
    lenet5_conv_specs,
    make_arrivals,
    poisson_arrivals,
    serving_network,
)


@st.composite
def conv_case(draw):
    """A random (batch, feature map, kernels, stride, padding) problem."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    batch = draw(st.integers(min_value=1, max_value=4))
    channels = draw(st.integers(min_value=1, max_value=3))
    height = draw(st.integers(min_value=4, max_value=9))
    width = draw(st.integers(min_value=4, max_value=9))
    kernel = draw(st.integers(min_value=1, max_value=3))
    stride = draw(st.integers(min_value=1, max_value=3))
    padding = draw(st.integers(min_value=0, max_value=2))
    num_kernels = draw(st.integers(min_value=1, max_value=4))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, channels, height, width))
    k = rng.normal(size=(num_kernels, channels, kernel, kernel))
    return x, k, stride, padding


class TestPhotonicBatchTransparency:
    """convolve(batch) == stack(convolve(image)) bit-exactly."""

    @given(case=conv_case())
    @settings(max_examples=30, deadline=None)
    def test_ideal_matrix_engine(self, case):
        x, k, stride, padding = case
        engine = PhotonicConvolution()
        batched = engine.convolve(x, k, stride, padding)
        stacked = np.stack(
            [engine.convolve(image, k, stride, padding) for image in x]
        )
        assert np.array_equal(batched, stacked)

    @given(case=conv_case())
    @settings(max_examples=15, deadline=None)
    def test_ideal_device_engine(self, case):
        x, k, stride, padding = case
        engine = PhotonicConvolution(method="device")
        batched = engine.convolve(x, k, stride, padding)
        stacked = np.stack(
            [engine.convolve(image, k, stride, padding) for image in x]
        )
        assert np.array_equal(batched, stacked)

    @given(case=conv_case())
    @settings(max_examples=15, deadline=None)
    def test_quantized_device_engine(self, case):
        """The invariant PR 2's per-image TIA gain fix established: an
        image's DAC/ADC quantization never depends on its batch-mates."""
        x, k, stride, padding = case
        engine = PhotonicConvolution(method="device", quantize=True)
        batched = engine.convolve(x, k, stride, padding)
        stacked = np.stack(
            [engine.convolve(image, k, stride, padding) for image in x]
        )
        assert np.array_equal(batched, stacked)

    @given(case=conv_case(), noise_seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=10, deadline=None)
    def test_noisy_engine_deterministic(self, case, noise_seed):
        """Noisy mode promises reproducibility, not batch transparency:
        identical calls draw identical noise (the NoiseConfig.fork
        invariant PR 2 established), batched or not."""
        x, k, stride, padding = case
        config = PCNNAConfig(noise=realistic(seed=noise_seed))
        engine = PhotonicConvolution(config, method="device")
        first = engine.convolve(x, k, stride, padding)
        second = engine.convolve(x, k, stride, padding)
        assert np.array_equal(first, second)


@st.composite
def electronic_stack_case(draw):
    """A random electronic-layer stack with a fitting input."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    channels = draw(st.integers(min_value=1, max_value=4))
    side = draw(st.integers(min_value=5, max_value=12))
    batch = draw(st.integers(min_value=1, max_value=4))
    shape: tuple[int, ...] = (channels, side, side)
    layers = []

    if draw(st.booleans()):
        num_kernels = draw(st.integers(min_value=1, max_value=4))
        kernel = draw(st.integers(min_value=1, max_value=min(3, side)))
        stride = draw(st.integers(min_value=1, max_value=2))
        bias = rng.normal(size=num_kernels) if draw(st.booleans()) else None
        conv = Conv2D(
            rng.normal(size=(num_kernels, channels, kernel, kernel)),
            stride=stride,
            bias=bias,
        )
        layers.append(conv)
        shape = conv.output_shape(shape)
    layers.append(ReLU())
    if draw(st.booleans()):
        layers.append(LocalResponseNorm(size=draw(st.integers(1, 5))))
    pool = draw(st.integers(min_value=1, max_value=3))
    if shape[1] >= pool and draw(st.booleans()):
        pool_layer = MaxPool2D(pool, stride=draw(st.integers(1, 2)))
        layers.append(pool_layer)
        shape = pool_layer.output_shape(shape)
    layers.append(Flatten())
    features = shape[0] * shape[1] * shape[2]
    out = draw(st.integers(min_value=1, max_value=5))
    layers.append(
        Dense(
            rng.normal(size=(out, features)),
            bias=rng.normal(size=out) if draw(st.booleans()) else None,
        )
    )
    if draw(st.booleans()):
        layers.append(Softmax())
    network = Network(layers, input_shape=(channels, side, side), name="rand")
    inputs = rng.normal(size=(batch, channels, side, side))
    return network, inputs


class TestNetworkBatchTransparency:
    @given(case=electronic_stack_case())
    @settings(max_examples=40, deadline=None)
    def test_forward_batch_equals_stacked_forward(self, case):
        """Network.forward_batch == stacked per-image forward, bit-exact,
        for random stacks of every electronic layer type."""
        network, inputs = case
        batched = network.forward_batch(inputs)
        stacked = np.stack([network.forward(image) for image in inputs])
        assert np.array_equal(batched, stacked)

    @given(case=electronic_stack_case())
    @settings(max_examples=10, deadline=None)
    def test_run_network_batched_equals_stacked(self, case):
        """The accelerator facade keeps the same invariant end to end
        (photonic convs + electronic rest) in ideal mode."""
        network, inputs = case
        accelerator = PCNNA()
        batched = accelerator.run_network(network, inputs)
        stacked = np.stack(
            [accelerator.run_network(network, image) for image in inputs]
        )
        assert np.array_equal(batched, stacked)

    @given(
        case=electronic_stack_case(),
        cores=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_pipelined_runner_preserves_outputs(self, case, cores):
        """Splitting layers over cores never changes the outputs."""
        network, inputs = case
        if not network.conv_specs():
            return  # conv-free stacks cannot be pipelined (tested elsewhere)
        result = run_network_pipelined(network, inputs, cores, clamp_cores=True)
        assert np.array_equal(result.outputs, PCNNA().run_network(network, inputs))


class TestGeometryHonesty:
    """The shape equations match the shapes the ops actually produce."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        height=st.integers(min_value=1, max_value=12),
        width=st.integers(min_value=1, max_value=12),
        pool=st.integers(min_value=1, max_value=4),
        stride=st.integers(min_value=1, max_value=4),
        batch=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_pool_output_size_matches_max_pool2d(
        self, seed, height, width, pool, stride, batch
    ):
        if pool > min(height, width):
            with pytest.raises(ValueError):
                pool_output_size(min(height, width), pool, stride)
            return
        expected = (
            pool_output_size(height, pool, stride),
            pool_output_size(width, pool, stride),
        )
        rng = np.random.default_rng(seed)
        single = F.max_pool2d(rng.normal(size=(2, height, width)), pool, stride)
        assert single.shape == (2, *expected)
        batched = F.max_pool2d(
            rng.normal(size=(batch, 2, height, width)), pool, stride
        )
        assert batched.shape == (batch, 2, *expected)
        layer = MaxPool2D(pool, stride=stride)
        assert layer.output_shape((2, height, width)) == (2, *expected)

    @given(case=conv_case())
    @settings(max_examples=30, deadline=None)
    def test_conv_output_side_matches_engines(self, case):
        x, k, stride, padding = case
        batch, _, height, width = x.shape
        expected = (
            conv_output_side(height, k.shape[2], padding, stride),
            conv_output_side(width, k.shape[2], padding, stride),
        )
        functional = F.conv2d_batch(x, k, stride, padding)
        assert functional.shape == (batch, k.shape[0], *expected)
        photonic = PhotonicConvolution().convolve(x, k, stride, padding)
        assert photonic.shape == (batch, k.shape[0], *expected)


_FAULT_HORIZON_S = 0.1
"""Rough span of the random arrival traces the fault cases serve."""


@st.composite
def fault_event_case(draw, num_cores: int):
    """One random fault event, onset inside (or beyond) the horizon."""
    kind = draw(st.sampled_from(FAULT_KINDS))
    # Deliberately allow cores beyond the pipeline: such events are inert.
    core = draw(st.integers(min_value=0, max_value=num_cores))
    onset = draw(
        st.floats(
            min_value=0.0, max_value=1.5 * _FAULT_HORIZON_S, allow_nan=False
        )
    )
    duration = draw(
        st.one_of(
            st.just(math.inf),
            st.floats(min_value=1e-3, max_value=_FAULT_HORIZON_S),
        )
    )
    if kind == "thermal_ramp":
        magnitude = draw(st.floats(min_value=0.0, max_value=20.0))
    elif kind == "crosstalk":
        magnitude = draw(st.floats(min_value=0.0, max_value=0.8))
    else:
        magnitude = draw(st.floats(min_value=0.0, max_value=1.0))
    rings = tuple(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=7),
                min_size=1,
                max_size=8,
                unique=True,
            )
        )
    )
    return FaultEvent(
        kind=kind,
        core=core,
        onset_s=onset,
        magnitude=magnitude,
        duration_s=duration,
        rings=rings,
    )


@st.composite
def fault_serving_case(draw):
    """A random (schedule, policy, trace, recalibration) serving problem."""
    num_cores = draw(st.integers(min_value=1, max_value=3))
    events = draw(
        st.lists(fault_event_case(num_cores), min_size=0, max_size=5)
    )
    schedule = FaultSchedule(name="hypothesis", events=tuple(events))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_requests = draw(st.integers(min_value=5, max_value=150))
    arrivals = poisson_arrivals(
        num_requests / _FAULT_HORIZON_S, num_requests, seed=seed
    )
    policy = draw(
        st.sampled_from(
            [
                BatchingPolicy.fifo(),
                BatchingPolicy.dynamic(8, 1e-3),
                BatchingPolicy.fixed(16),
            ]
        )
    )
    recalibration = draw(
        st.sampled_from([None, RecalibrationPolicy()])
    )
    repartition = draw(st.booleans())
    return schedule, num_cores, arrivals, policy, recalibration, repartition


class TestFaultedServingInvariants:
    """Whatever the faults do, serving must finish, conserve, stay sane."""

    @given(case=fault_serving_case())
    @settings(max_examples=12, deadline=None)
    def test_never_deadlocks_conserves_and_stays_finite(self, case):
        schedule, num_cores, arrivals, policy, recalibration, repartition = (
            case
        )
        specs = alexnet_conv_specs()
        model = PipelineServiceModel.from_specs(specs, num_cores)
        report = DegradedServingSimulator(
            model,
            policy,
            schedule,
            recalibration=recalibration,
            specs=specs if repartition else None,
        ).run(arrivals)

        # Conservation: every request served exactly once, in order.
        assert report.num_requests == arrivals.size
        assert sum(batch.size for batch in report.batches) == arrivals.size
        cursor = 0
        for batch in report.batches:
            assert batch.first_request == cursor
            cursor += batch.size

        # Causality and finiteness: arrivals -> dispatch -> completion.
        assert np.all(np.isfinite(report.dispatch_s))
        assert np.all(np.isfinite(report.completion_s))
        assert np.all(report.dispatch_s >= report.arrival_s)
        assert np.all(report.completion_s > report.dispatch_s)
        assert np.all(report.latencies_s > 0.0)
        assert np.isfinite(report.p99_s)

        # Degradation accounting stays sane.
        assert np.all(np.isfinite(report.accuracy_proxy))
        assert np.all(report.accuracy_proxy >= 0.0)
        assert len(report.accuracy_proxy) == len(report.batches)
        assert np.all(report.batch_num_cores >= 1)
        assert np.all(report.batch_num_cores <= num_cores)
        assert np.all(np.diff(report.batch_num_cores) <= 0)
        assert all(
            0.0 <= downtime < math.inf for downtime in report.core_downtime_s
        )
        assert all(0.0 < a <= 1.0 for a in report.availability)
        if recalibration is None:
            assert report.recalibrations == ()
        if not repartition:
            assert report.repartitions == ()

    @given(case=fault_serving_case())
    @settings(max_examples=6, deadline=None)
    def test_deterministic_under_identical_inputs(self, case):
        """The whole degraded run is a pure function of its inputs."""
        schedule, num_cores, arrivals, policy, recalibration, repartition = (
            case
        )
        specs = alexnet_conv_specs()

        def run():
            model = PipelineServiceModel.from_specs(specs, num_cores)
            return DegradedServingSimulator(
                model,
                policy,
                schedule,
                recalibration=recalibration,
                specs=specs if repartition else None,
            ).run(arrivals)

        first, second = run(), run()
        assert np.array_equal(first.completion_s, second.completion_s)
        assert np.array_equal(first.accuracy_proxy, second.accuracy_proxy)
        assert first.batches == second.batches
        assert first.core_downtime_s == second.core_downtime_s
        assert first.recalibrations == second.recalibrations
        assert first.repartitions == second.repartitions


_TENANT_SPECS = (alexnet_conv_specs, lenet5_conv_specs)


@st.composite
def cluster_tenant_case(draw, index: int):
    """One random tenant: model, policy, weight, priority, queue cap."""
    specs = tuple(draw(st.sampled_from(_TENANT_SPECS))())
    policy = draw(
        st.sampled_from(
            [
                BatchingPolicy.fifo(),
                BatchingPolicy.dynamic(8, 1e-3),
                BatchingPolicy.fixed(16),
            ]
        )
    )
    return ClusterTenant(
        name=f"tenant-{index}",
        specs=specs,
        policy=policy,
        weight=draw(st.floats(min_value=0.5, max_value=4.0)),
        priority=draw(st.integers(min_value=0, max_value=2)),
        queue_cap=draw(st.one_of(st.none(), st.integers(8, 64))),
    )


@st.composite
def cluster_serving_case(draw):
    """A random (tenant mix, pool, traces, faults) cluster problem."""
    num_tenants = draw(st.integers(min_value=1, max_value=3))
    tenants = [
        draw(cluster_tenant_case(index)) for index in range(num_tenants)
    ]
    pool_size = draw(
        st.integers(min_value=num_tenants, max_value=num_tenants + 3)
    )
    arrivals = {}
    for position, tenant in enumerate(tenants):
        seed = draw(st.integers(min_value=0, max_value=10_000))
        count = draw(st.integers(min_value=5, max_value=80))
        arrivals[tenant.name] = poisson_arrivals(
            count / _FAULT_HORIZON_S, count, seed=seed
        )
    events = draw(
        st.lists(fault_event_case(pool_size), min_size=0, max_size=4)
    )
    schedule = (
        FaultSchedule(name="hypothesis", events=tuple(events))
        if events
        else None
    )
    routing = draw(
        st.sampled_from([RoutingPolicy.weighted_fair(), RoutingPolicy.priority()])
    )
    elastic = draw(
        st.sampled_from([None, ElasticReallocation(min_queue=8)])
    )
    recalibration = draw(st.sampled_from([None, RecalibrationPolicy()]))
    return tenants, pool_size, arrivals, schedule, routing, elastic, recalibration


class TestClusterServingInvariants:
    """Whatever the mix and faults, every tenant conserves and finishes."""

    @given(case=cluster_serving_case())
    @settings(max_examples=10, deadline=None)
    def test_conservation_isolation_and_finiteness(self, case):
        tenants, pool, arrivals, schedule, routing, elastic, recal = case
        report = ClusterSimulator(
            tenants,
            pool,
            routing=routing,
            elastic=elastic,
            schedule=schedule,
            recalibration=recal,
        ).run(arrivals)

        for tenant in tenants:
            sub = report.tenant(tenant.name)
            offered = arrivals[tenant.name]
            # Conservation: served + shed = offered, each exactly once.
            assert sub.num_requests + sub.num_shed == offered.size
            assert sum(batch.size for batch in sub.batches) == sub.num_requests
            cursor = 0
            for batch in sub.batches:
                assert batch.first_request == cursor
                cursor += batch.size
            # No cross-tenant leakage: every served and shed arrival is
            # the tenant's own, and together they partition its trace.
            merged = np.sort(
                np.concatenate([sub.arrival_s, sub.shed_arrival_s])
            )
            assert np.array_equal(merged, offered)
            # Causality and finiteness.
            assert np.all(np.isfinite(sub.completion_s))
            assert np.all(sub.dispatch_s >= sub.arrival_s)
            assert np.all(sub.completion_s > sub.dispatch_s)
            assert np.all(sub.latencies_s > 0.0)
            assert np.isfinite(sub.p99_s)
            # Width and proxy bookkeeping stays per-batch.
            assert len(sub.batch_num_cores) == len(sub.batches)
            assert np.all(sub.batch_num_cores >= 1)
            assert np.all(sub.batch_num_cores <= pool)
            assert np.all(np.isfinite(sub.accuracy_proxy))
            if schedule is None:
                assert np.all(sub.accuracy_proxy == 0.0)
        # Pool-level accounting.
        assert report.num_served + report.num_shed == report.num_offered
        assert all(
            0.0 <= downtime < math.inf for downtime in report.core_downtime_s
        )
        if recal is None or schedule is None:
            assert report.recalibrations == ()

    @given(case=cluster_serving_case())
    @settings(max_examples=5, deadline=None)
    def test_deterministic_under_identical_inputs(self, case):
        tenants, pool, arrivals, schedule, routing, elastic, recal = case

        def run():
            return ClusterSimulator(
                tenants,
                pool,
                routing=routing,
                elastic=elastic,
                schedule=schedule,
                recalibration=recal,
            ).run(arrivals)

        first, second = run(), run()
        assert first.reallocations == second.reallocations
        assert first.recalibrations == second.recalibrations
        for tenant in tenants:
            a, b = first.tenant(tenant.name), second.tenant(tenant.name)
            assert np.array_equal(a.completion_s, b.completion_s)
            assert np.array_equal(a.shed_arrival_s, b.shed_arrival_s)
            assert np.array_equal(a.accuracy_proxy, b.accuracy_proxy)
            assert a.batches == b.batches


# --------------------------------------------------------------------------
# PR 6: vectorized kernel vs reference event loop
# --------------------------------------------------------------------------


@st.composite
def kernel_trace_case(draw):
    """A random (model, policy, trace) pluginless serving problem.

    Policies span all three planner recipes (including the zero- and
    tiny-wait dynamic edges), traces span all three arrival processes at
    loads from starved to saturated, and an optional coarse quantization
    collapses arrivals onto a grid to force simultaneous-arrival ties.
    """
    num_cores = draw(st.integers(min_value=1, max_value=3))
    model = PipelineServiceModel.from_specs(lenet5_conv_specs(), num_cores)
    policy = draw(
        st.sampled_from(
            [
                BatchingPolicy.fifo(),
                BatchingPolicy.dynamic(1, 1e-3),
                BatchingPolicy.dynamic(4, 0.0),
                BatchingPolicy.dynamic(2, 1e-9),
                BatchingPolicy.dynamic(8, 1e-4),
                BatchingPolicy.fixed(3),
                BatchingPolicy.fixed(16),
            ]
        )
    )
    pattern = draw(st.sampled_from(["poisson", "mmpp", "diurnal"]))
    load = draw(st.sampled_from([0.2, 1.0, 4.0, 20.0]))
    num_requests = draw(st.integers(min_value=1, max_value=200))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rate = load * model.capacity_rps(max(policy.max_batch, 1))
    arrivals = make_arrivals(pattern, rate, num_requests, seed=seed)
    if draw(st.booleans()):
        # Quantize onto a coarse grid: rounding is monotone, so the
        # trace stays sorted, but distinct arrivals now collide.
        span = float(arrivals[-1]) if float(arrivals[-1]) > 0.0 else 1.0
        decimals = max(0, int(-np.floor(np.log10(span))) + 1)
        arrivals = np.round(arrivals, decimals)
    return model, policy, arrivals


class TestKernelModeEquivalence:
    """The vectorized kernel is the reference loop, bit for bit."""

    @given(case=kernel_trace_case())
    @settings(max_examples=60, deadline=None)
    def test_vectorized_bit_identical_to_reference(self, case):
        model, policy, arrivals = case
        ref = ServingSimulator(model, policy, mode="reference").run(arrivals)
        vec = ServingSimulator(model, policy, mode="vectorized").run(arrivals)
        assert ref.dispatch_s.tobytes() == vec.dispatch_s.tobytes()
        assert ref.completion_s.tobytes() == vec.completion_s.tobytes()
        assert ref.core_busy_s == vec.core_busy_s
        assert len(ref.batches) == len(vec.batches)
        assert ref.batches == vec.batches
        for a, b in zip(ref.batches, vec.batches):
            assert a.first_request == b.first_request
            assert a.size == b.size
            assert a.dispatch_s == b.dispatch_s
            assert a.completion_s == b.completion_s

    @given(case=kernel_trace_case())
    @settings(max_examples=40, deadline=None)
    def test_vectorized_run_conserves_and_orders(self, case):
        model, policy, arrivals = case
        report = ServingSimulator(model, policy, mode="vectorized").run(
            arrivals
        )
        n = arrivals.size
        # Conservation: every request lands in exactly one batch, in
        # trace order, and the per-request streams cover the trace.
        sizes = np.array([batch.size for batch in report.batches])
        heads = np.array([batch.first_request for batch in report.batches])
        assert int(sizes.sum()) == n
        assert np.array_equal(heads, np.concatenate(([0], np.cumsum(sizes)[:-1])))
        assert report.dispatch_s.shape == (n,)
        assert report.completion_s.shape == (n,)
        # Causality and monotonicity: dispatch never precedes arrival,
        # completion never precedes dispatch, and batches finish in
        # dispatch order (the pipeline never reorders).
        assert np.all(report.dispatch_s >= report.arrival_s)
        assert np.all(report.completion_s > report.dispatch_s)
        assert np.all(np.diff(report.dispatch_s) >= 0.0)
        assert np.all(np.diff(report.completion_s) >= 0.0)
        assert all(busy >= 0.0 for busy in report.core_busy_s)


# --------------------------------------------------------------------------
# PR 10: frozen-allocation cluster fast path + parallel grid executor
# --------------------------------------------------------------------------


@st.composite
def frozen_cluster_case(draw):
    """A random frozen-allocation cluster: no faults, no elastic — the
    shape the vectorized lane decomposition claims to cover exactly.
    Caps are drawn down to 1 so the admission walk and its scalar
    fallback both get exercised, and traces optionally quantize onto a
    coarse grid to pile ties onto cap boundaries."""
    num_tenants = draw(st.integers(min_value=1, max_value=3))
    tenants = []
    arrivals = {}
    for index in range(num_tenants):
        specs = tuple(draw(st.sampled_from(_TENANT_SPECS))())
        policy = draw(
            st.sampled_from(
                [
                    BatchingPolicy.fifo(),
                    BatchingPolicy.dynamic(8, 1e-3),
                    BatchingPolicy.dynamic(4, 0.0),
                    BatchingPolicy.fixed(8),
                ]
            )
        )
        tenant = ClusterTenant(
            name=f"tenant-{index}",
            specs=specs,
            policy=policy,
            weight=draw(st.floats(min_value=0.5, max_value=4.0)),
            priority=draw(st.integers(min_value=0, max_value=2)),
            queue_cap=draw(st.one_of(st.none(), st.integers(1, 64))),
        )
        count = draw(st.integers(min_value=1, max_value=120))
        seed = draw(st.integers(min_value=0, max_value=10_000))
        trace = poisson_arrivals(count / _FAULT_HORIZON_S, count, seed=seed)
        if draw(st.booleans()):
            span = float(trace[-1]) if float(trace[-1]) > 0.0 else 1.0
            decimals = max(0, int(-np.floor(np.log10(span))) + 1)
            trace = np.round(trace, decimals)
        tenants.append(tenant)
        arrivals[tenant.name] = trace
    pool_size = draw(
        st.integers(min_value=num_tenants, max_value=num_tenants + 3)
    )
    routing = draw(
        st.sampled_from(
            [RoutingPolicy.weighted_fair(), RoutingPolicy.priority()]
        )
    )
    return tenants, pool_size, arrivals, routing


class TestClusterModeEquivalence:
    """Frozen-allocation clusters: vectorized == reference, byte for
    byte, and the parallel grid executor == serial, byte for byte."""

    @given(case=frozen_cluster_case())
    @settings(max_examples=25, deadline=None)
    def test_cluster_modes_byte_identical(self, case):
        tenants, pool, arrivals, routing = case
        ref = simulate_cluster_serving(
            tenants, arrivals, pool, routing=routing, mode="reference"
        )
        vec = simulate_cluster_serving(
            tenants, arrivals, pool, routing=routing, mode="vectorized"
        )
        auto = simulate_cluster_serving(
            tenants, arrivals, pool, routing=routing
        )
        for other in (vec, auto):
            assert other.routing == ref.routing
            for r, v in zip(ref.tenants, other.tenants):
                assert r.tenant == v.tenant
                assert r.arrival_s.tobytes() == v.arrival_s.tobytes()
                assert r.dispatch_s.tobytes() == v.dispatch_s.tobytes()
                assert r.completion_s.tobytes() == v.completion_s.tobytes()
                assert (
                    r.shed_arrival_s.tobytes() == v.shed_arrival_s.tobytes()
                )
                assert tuple(r.batches) == tuple(v.batches)
                assert r.core_busy_s == v.core_busy_s
                assert np.array_equal(r.batch_num_cores, v.batch_num_cores)
                assert np.array_equal(r.accuracy_proxy, v.accuracy_proxy)

    @given(case=frozen_cluster_case())
    @settings(max_examples=3, deadline=None)
    def test_sweep_workers_byte_identical(self, case):
        """``workers`` in {1, 2, 4} over a pool-size sweep returns the
        same points in the same order with the same bytes."""
        tenants, pool, arrivals, routing = case
        pools = [pool, pool + 1, pool + 2]
        serial = sweep_cluster_serving(
            tenants, arrivals, pools, routing=routing
        )
        for workers in (2, 4):
            fanned = sweep_cluster_serving(
                tenants, arrivals, pools, routing=routing, workers=workers
            )
            assert len(fanned) == len(serial)
            for a, b in zip(serial, fanned):
                assert a.pool_size == b.pool_size
                for r, v in zip(a.report.tenants, b.report.tenants):
                    assert r.tenant == v.tenant
                    assert r.dispatch_s.tobytes() == v.dispatch_s.tobytes()
                    assert (
                        r.completion_s.tobytes() == v.completion_s.tobytes()
                    )
                    assert (
                        r.shed_arrival_s.tobytes()
                        == v.shed_arrival_s.tobytes()
                    )
                    assert tuple(r.batches) == tuple(v.batches)


# --------------------------------------------------------------------------
# PR 8: planet-scale fleet runtime
# --------------------------------------------------------------------------


@st.composite
def fleet_serving_case(draw, with_faults: bool = True):
    """A random (regions × tenants × faults × routing) fleet problem."""
    num_tenants = draw(st.integers(min_value=1, max_value=2))
    tenants = [
        draw(cluster_tenant_case(index)) for index in range(num_tenants)
    ]
    num_regions = draw(st.integers(min_value=1, max_value=3))
    regions = []
    for position in range(num_regions):
        pool_size = draw(
            st.integers(min_value=num_tenants, max_value=num_tenants + 2)
        )
        schedule = None
        if with_faults:
            events = draw(
                st.lists(fault_event_case(pool_size), min_size=0, max_size=3)
            )
            if events:
                schedule = FaultSchedule(
                    name="hypothesis", events=tuple(events)
                )
        regions.append(
            RegionSpec(f"region-{position}", pool_size, schedule=schedule)
        )
    arrival_s = {}
    for position, region in enumerate(regions):
        arrival_s[region.name] = {}
        for tenant in tenants:
            # Region 0 always offers tenant 0 so the fleet is non-empty;
            # elsewhere streams drop out at random (idle regions).
            if position > 0 or tenant is not tenants[0]:
                if draw(st.booleans()):
                    continue
            seed = draw(st.integers(min_value=0, max_value=10_000))
            count = draw(st.integers(min_value=5, max_value=60))
            arrival_s[region.name][tenant.name] = poisson_arrivals(
                count / _FAULT_HORIZON_S, count, seed=seed
            )
    routing = GlobalRoutingPolicy(
        kind=draw(st.sampled_from(FLEET_ROUTING_KINDS))
    )
    rtt_s = draw(
        st.sampled_from([None, 0.0, 1e-3, 5e-3])
    )
    if rtt_s is not None:
        rtt_s = uniform_rtt(num_regions, rtt_s)
    return tenants, regions, arrival_s, rtt_s, routing


class TestFleetServingInvariants:
    """Whatever the geography and faults, the fleet conserves and finishes."""

    @given(case=fleet_serving_case())
    @settings(max_examples=8, deadline=None)
    def test_global_conservation_and_finiteness(self, case):
        tenants, regions, arrival_s, rtt_s, routing = case
        report = FleetRuntime(
            tenants, regions, rtt_s=rtt_s, routing=routing
        ).run(arrival_s)

        offered = 0
        for trace in report.traces:
            stream = arrival_s[trace.home_region][trace.tenant]
            offered += stream.size
            # Conservation: served + shed = offered, stream by stream.
            assert trace.num_offered == stream.size
            assert trace.num_served + trace.num_shed == stream.size
            assert np.array_equal(trace.offered_arrival_s, stream)
            # Every request lands on a real region.
            assert np.all(trace.server_region >= 0)
            assert np.all(trace.server_region < len(regions))
            # Served latencies are finite and positive; shed are NaN.
            served = trace.latency_s[trace.served]
            assert np.all(np.isfinite(served))
            assert np.all(served > 0.0)
            assert np.all(np.isnan(trace.latency_s[~trace.served]))
        assert report.num_offered == offered
        assert report.num_served + report.num_shed == offered
        # Regional routed/served tallies close the same ledger.
        assert (
            sum(outcome.routed_in for outcome in report.regions) == offered
        )
        assert (
            sum(outcome.num_served + outcome.num_shed
                for outcome in report.regions)
            == offered
        )

    @given(case=fleet_serving_case(with_faults=False))
    @settings(max_examples=8, deadline=None)
    def test_geo_affinity_never_leaks_when_healthy(self, case):
        tenants, regions, arrival_s, rtt_s, _ = case
        report = FleetRuntime(
            tenants,
            regions,
            rtt_s=rtt_s,
            routing=GlobalRoutingPolicy.geo_affinity(),
        ).run(arrival_s)
        assert report.num_remote == 0
        for trace in report.traces:
            assert np.all(trace.server_region == trace.home_index)
        for outcome in report.regions:
            assert outcome.remote_in == 0

    @given(case=fleet_serving_case())
    @settings(max_examples=5, deadline=None)
    def test_byte_deterministic_under_identical_inputs(self, case):
        tenants, regions, arrival_s, rtt_s, routing = case

        def run():
            return FleetRuntime(
                tenants, regions, rtt_s=rtt_s, routing=routing
            ).run(arrival_s)

        first, second = run(), run()
        assert first.failovers == second.failovers
        assert first.autoscale_events == second.autoscale_events
        for a, b in zip(first.traces, second.traces):
            assert a.home_region == b.home_region
            assert a.tenant == b.tenant
            assert a.latency_s.tobytes() == b.latency_s.tobytes()
            assert a.server_region.tobytes() == b.server_region.tobytes()
            assert a.served.tobytes() == b.served.tobytes()


# --------------------------------------------------------------------------
# PR 9: adaptive control plane
# --------------------------------------------------------------------------


@st.composite
def adaptive_controller_case(draw):
    """One random (valid) EWMA recalibration controller."""
    base = RecalibrationPolicy(
        error_threshold=draw(st.floats(min_value=0.02, max_value=0.2))
    )
    return AdaptiveRecalibration(
        base=base,
        smoothing=draw(st.floats(min_value=0.05, max_value=1.0)),
        lead_time_s=draw(st.sampled_from([0.0, 0.005, 0.02])),
        pressure_hold=draw(st.one_of(st.none(), st.integers(1, 8))),
        downtime_budget_s=draw(st.sampled_from([math.inf, 1e-3, 1e-2])),
    )


@st.composite
def adaptive_cluster_case(draw):
    """A random cluster problem driven end to end by adaptive policies."""
    num_tenants = draw(st.integers(min_value=1, max_value=3))
    tenants = [
        draw(cluster_tenant_case(index)) for index in range(num_tenants)
    ]
    pool_size = draw(
        st.integers(min_value=num_tenants, max_value=num_tenants + 3)
    )
    arrivals = {}
    admission = {}
    for tenant in tenants:
        seed = draw(st.integers(min_value=0, max_value=10_000))
        count = draw(st.integers(min_value=5, max_value=60))
        arrivals[tenant.name] = poisson_arrivals(
            count / _FAULT_HORIZON_S, count, seed=seed
        )
        choice = draw(st.sampled_from(["none", "disabled", "burn"]))
        if choice == "disabled":
            admission[tenant.name] = BurnRateAdmission.disabled(
                queue_cap=tenant.queue_cap
            )
        elif choice == "burn":
            admission[tenant.name] = BurnRateAdmission(
                slo_latency_s=draw(
                    st.floats(min_value=1e-5, max_value=1e-2)
                ),
                max_burn_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
                window=draw(st.integers(min_value=1, max_value=32)),
                queue_cap=tenant.queue_cap,
            )
    events = draw(
        st.lists(fault_event_case(pool_size), min_size=0, max_size=4)
    )
    schedule = (
        FaultSchedule(name="hypothesis", events=tuple(events))
        if events
        else None
    )
    elastic = draw(
        st.sampled_from(
            [
                None,
                ElasticReallocation(min_queue=8),
                PressureController(
                    base=ElasticReallocation(min_queue=8), gain=0.5
                ),
                PressureController.inert(ElasticReallocation(min_queue=8)),
            ]
        )
    )
    recalibration = draw(
        st.one_of(st.none(), adaptive_controller_case())
    )
    return tenants, pool_size, arrivals, schedule, elastic, recalibration, admission


class TestAdaptiveClusterInvariants:
    """Whatever the controllers decide, the ledgers must still close."""

    @given(case=adaptive_cluster_case())
    @settings(max_examples=10, deadline=None)
    def test_conservation_isolation_and_finiteness(self, case):
        tenants, pool, arrivals, schedule, elastic, recal, admission = case
        report = ClusterSimulator(
            tenants,
            pool,
            elastic=elastic,
            schedule=schedule,
            recalibration=recal,
            admission=admission,
        ).run(arrivals)

        for tenant in tenants:
            sub = report.tenant(tenant.name)
            offered = arrivals[tenant.name]
            assert sub.num_requests + sub.num_shed == offered.size
            assert sum(batch.size for batch in sub.batches) == sub.num_requests
            # No cross-tenant leakage: served and shed partition the
            # tenant's own trace exactly.
            merged = np.sort(
                np.concatenate([sub.arrival_s, sub.shed_arrival_s])
            )
            assert np.array_equal(merged, offered)
            assert np.all(np.isfinite(sub.completion_s))
            assert np.all(sub.dispatch_s >= sub.arrival_s)
            assert np.all(sub.completion_s > sub.dispatch_s)
            assert np.all(sub.latencies_s > 0.0)
            assert np.all(np.isfinite(sub.accuracy_proxy))
        assert report.num_served + report.num_shed == report.num_offered
        assert all(
            0.0 <= downtime < math.inf for downtime in report.core_downtime_s
        )
        if recal is not None and math.isfinite(recal.downtime_budget_s):
            # The budget gate: one recalibration may straddle the line,
            # never more.
            worst = recal.base.downtime_s(recal.base.max_iterations)
            assert all(
                downtime <= recal.downtime_budget_s + worst
                for downtime in report.core_downtime_s
            )

    @given(case=adaptive_cluster_case())
    @settings(max_examples=6, deadline=None)
    def test_byte_deterministic_under_identical_inputs(self, case):
        tenants, pool, arrivals, schedule, elastic, recal, admission = case

        def run():
            return ClusterSimulator(
                tenants,
                pool,
                elastic=elastic,
                schedule=schedule,
                recalibration=recal,
                admission=admission,
            ).run(arrivals)

        first, second = run(), run()
        assert first.reallocations == second.reallocations
        assert first.recalibrations == second.recalibrations
        for tenant in tenants:
            a, b = first.tenant(tenant.name), second.tenant(tenant.name)
            assert a.completion_s.tobytes() == b.completion_s.tobytes()
            assert a.shed_arrival_s.tobytes() == b.shed_arrival_s.tobytes()
            assert a.accuracy_proxy.tobytes() == b.accuracy_proxy.tobytes()
            assert a.batches == b.batches


@st.composite
def adaptive_serving_case(draw):
    """A random single-engine adaptive serving problem."""
    num_cores = draw(st.integers(min_value=1, max_value=3))
    events = draw(
        st.lists(fault_event_case(num_cores), min_size=0, max_size=4)
    )
    schedule = FaultSchedule(name="hypothesis", events=tuple(events))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_requests = draw(st.integers(min_value=1, max_value=120))
    arrivals = poisson_arrivals(
        num_requests / _FAULT_HORIZON_S, num_requests, seed=seed
    )
    policy = draw(
        st.sampled_from(
            [BatchingPolicy.fifo(), BatchingPolicy.dynamic(8, 1e-3)]
        )
    )
    controller = draw(adaptive_controller_case())
    return schedule, num_cores, arrivals, policy, controller


class TestAdaptiveServingInvariants:
    @given(case=adaptive_serving_case())
    @settings(max_examples=10, deadline=None)
    def test_decision_stream_deterministic_and_well_formed(self, case):
        schedule, num_cores, arrivals, policy, controller = case
        network = serving_network("lenet5")

        def run():
            return simulate_adaptive_serving(
                network,
                arrivals,
                policy,
                schedule,
                num_cores,
                controller=controller,
                clamp_cores=True,
            )

        first, second = run(), run()
        # The run is conserved, causal, and finite.
        assert first.num_requests == arrivals.size
        assert np.all(np.isfinite(first.completion_s))
        assert np.all(first.dispatch_s >= first.arrival_s)
        assert np.all(first.completion_s > first.dispatch_s)
        # The decision log is deterministic and well formed.
        assert first.decisions == second.decisions
        assert first.completion_s.tobytes() == second.completion_s.tobytes()
        assert first.accuracy_proxy.tobytes() == second.accuracy_proxy.tobytes()
        times = [d.time_s for d in first.decisions]
        assert times == sorted(times)
        for decision in first.decisions:
            assert decision.action in DECISION_ACTIONS
            assert 0 <= decision.core < num_cores
            assert math.isfinite(decision.error)
            assert math.isfinite(decision.smoothed)
            assert math.isfinite(decision.projected)
        assert first.num_deferrals == sum(
            1 for d in first.decisions if d.action != "recalibrate"
        )
