"""Randomized invariant tests for the batched execution engine.

PR 2 fixed two batched-vs-single divergences (quantized TIA gain, noise
forking) found by hand; these tests generalize that hunt.  Over random
shapes, strides, paddings, batch sizes, and execution modes they assert
the engine's two load-bearing invariants:

* **batch transparency** — executing a minibatch is *bit-identical* to
  stacking per-image executions, for the photonic convolution (ideal and
  quantized), the batch-native electronic ops, whole random layer
  stacks, and the multi-core pipelined runner;
* **geometry honesty** — ``pool_output_size`` / ``conv_output_side``
  (the shape equations every analytical model consumes) agree with the
  shapes the functional ops actually produce.

Noisy mode intentionally does not promise batch transparency (the noise
stream walks the whole wave stack, see ``docs/architecture.md``); what
it does promise — determinism under a fixed seed, batch-size-independent
per-image encodings — is asserted instead.

All randomness is drawn through seeded ``default_rng`` streams from
hypothesis-chosen seeds, so failures shrink and replay deterministically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import PCNNA, PhotonicConvolution
from repro.core.config import PCNNAConfig
from repro.core.serving import run_network_pipelined
from repro.nn import functional as F
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.network import Network
from repro.nn.shapes import conv_output_side, pool_output_size
from repro.photonics.noise import realistic


@st.composite
def conv_case(draw):
    """A random (batch, feature map, kernels, stride, padding) problem."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    batch = draw(st.integers(min_value=1, max_value=4))
    channels = draw(st.integers(min_value=1, max_value=3))
    height = draw(st.integers(min_value=4, max_value=9))
    width = draw(st.integers(min_value=4, max_value=9))
    kernel = draw(st.integers(min_value=1, max_value=3))
    stride = draw(st.integers(min_value=1, max_value=3))
    padding = draw(st.integers(min_value=0, max_value=2))
    num_kernels = draw(st.integers(min_value=1, max_value=4))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, channels, height, width))
    k = rng.normal(size=(num_kernels, channels, kernel, kernel))
    return x, k, stride, padding


class TestPhotonicBatchTransparency:
    """convolve(batch) == stack(convolve(image)) bit-exactly."""

    @given(case=conv_case())
    @settings(max_examples=30, deadline=None)
    def test_ideal_matrix_engine(self, case):
        x, k, stride, padding = case
        engine = PhotonicConvolution()
        batched = engine.convolve(x, k, stride, padding)
        stacked = np.stack(
            [engine.convolve(image, k, stride, padding) for image in x]
        )
        assert np.array_equal(batched, stacked)

    @given(case=conv_case())
    @settings(max_examples=15, deadline=None)
    def test_ideal_device_engine(self, case):
        x, k, stride, padding = case
        engine = PhotonicConvolution(method="device")
        batched = engine.convolve(x, k, stride, padding)
        stacked = np.stack(
            [engine.convolve(image, k, stride, padding) for image in x]
        )
        assert np.array_equal(batched, stacked)

    @given(case=conv_case())
    @settings(max_examples=15, deadline=None)
    def test_quantized_device_engine(self, case):
        """The invariant PR 2's per-image TIA gain fix established: an
        image's DAC/ADC quantization never depends on its batch-mates."""
        x, k, stride, padding = case
        engine = PhotonicConvolution(method="device", quantize=True)
        batched = engine.convolve(x, k, stride, padding)
        stacked = np.stack(
            [engine.convolve(image, k, stride, padding) for image in x]
        )
        assert np.array_equal(batched, stacked)

    @given(case=conv_case(), noise_seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=10, deadline=None)
    def test_noisy_engine_deterministic(self, case, noise_seed):
        """Noisy mode promises reproducibility, not batch transparency:
        identical calls draw identical noise (the NoiseConfig.fork
        invariant PR 2 established), batched or not."""
        x, k, stride, padding = case
        config = PCNNAConfig(noise=realistic(seed=noise_seed))
        engine = PhotonicConvolution(config, method="device")
        first = engine.convolve(x, k, stride, padding)
        second = engine.convolve(x, k, stride, padding)
        assert np.array_equal(first, second)


@st.composite
def electronic_stack_case(draw):
    """A random electronic-layer stack with a fitting input."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    channels = draw(st.integers(min_value=1, max_value=4))
    side = draw(st.integers(min_value=5, max_value=12))
    batch = draw(st.integers(min_value=1, max_value=4))
    shape: tuple[int, ...] = (channels, side, side)
    layers = []

    if draw(st.booleans()):
        num_kernels = draw(st.integers(min_value=1, max_value=4))
        kernel = draw(st.integers(min_value=1, max_value=min(3, side)))
        stride = draw(st.integers(min_value=1, max_value=2))
        bias = rng.normal(size=num_kernels) if draw(st.booleans()) else None
        conv = Conv2D(
            rng.normal(size=(num_kernels, channels, kernel, kernel)),
            stride=stride,
            bias=bias,
        )
        layers.append(conv)
        shape = conv.output_shape(shape)
    layers.append(ReLU())
    if draw(st.booleans()):
        layers.append(LocalResponseNorm(size=draw(st.integers(1, 5))))
    pool = draw(st.integers(min_value=1, max_value=3))
    if shape[1] >= pool and draw(st.booleans()):
        pool_layer = MaxPool2D(pool, stride=draw(st.integers(1, 2)))
        layers.append(pool_layer)
        shape = pool_layer.output_shape(shape)
    layers.append(Flatten())
    features = shape[0] * shape[1] * shape[2]
    out = draw(st.integers(min_value=1, max_value=5))
    layers.append(
        Dense(
            rng.normal(size=(out, features)),
            bias=rng.normal(size=out) if draw(st.booleans()) else None,
        )
    )
    if draw(st.booleans()):
        layers.append(Softmax())
    network = Network(layers, input_shape=(channels, side, side), name="rand")
    inputs = rng.normal(size=(batch, channels, side, side))
    return network, inputs


class TestNetworkBatchTransparency:
    @given(case=electronic_stack_case())
    @settings(max_examples=40, deadline=None)
    def test_forward_batch_equals_stacked_forward(self, case):
        """Network.forward_batch == stacked per-image forward, bit-exact,
        for random stacks of every electronic layer type."""
        network, inputs = case
        batched = network.forward_batch(inputs)
        stacked = np.stack([network.forward(image) for image in inputs])
        assert np.array_equal(batched, stacked)

    @given(case=electronic_stack_case())
    @settings(max_examples=10, deadline=None)
    def test_run_network_batched_equals_stacked(self, case):
        """The accelerator facade keeps the same invariant end to end
        (photonic convs + electronic rest) in ideal mode."""
        network, inputs = case
        accelerator = PCNNA()
        batched = accelerator.run_network(network, inputs)
        stacked = np.stack(
            [accelerator.run_network(network, image) for image in inputs]
        )
        assert np.array_equal(batched, stacked)

    @given(
        case=electronic_stack_case(),
        cores=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_pipelined_runner_preserves_outputs(self, case, cores):
        """Splitting layers over cores never changes the outputs."""
        network, inputs = case
        if not network.conv_specs():
            return  # conv-free stacks cannot be pipelined (tested elsewhere)
        result = run_network_pipelined(network, inputs, cores, clamp_cores=True)
        assert np.array_equal(result.outputs, PCNNA().run_network(network, inputs))


class TestGeometryHonesty:
    """The shape equations match the shapes the ops actually produce."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        height=st.integers(min_value=1, max_value=12),
        width=st.integers(min_value=1, max_value=12),
        pool=st.integers(min_value=1, max_value=4),
        stride=st.integers(min_value=1, max_value=4),
        batch=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_pool_output_size_matches_max_pool2d(
        self, seed, height, width, pool, stride, batch
    ):
        if pool > min(height, width):
            with pytest.raises(ValueError):
                pool_output_size(min(height, width), pool, stride)
            return
        expected = (
            pool_output_size(height, pool, stride),
            pool_output_size(width, pool, stride),
        )
        rng = np.random.default_rng(seed)
        single = F.max_pool2d(rng.normal(size=(2, height, width)), pool, stride)
        assert single.shape == (2, *expected)
        batched = F.max_pool2d(
            rng.normal(size=(batch, 2, height, width)), pool, stride
        )
        assert batched.shape == (batch, 2, *expected)
        layer = MaxPool2D(pool, stride=stride)
        assert layer.output_shape((2, height, width)) == (2, *expected)

    @given(case=conv_case())
    @settings(max_examples=30, deadline=None)
    def test_conv_output_side_matches_engines(self, case):
        x, k, stride, padding = case
        batch, _, height, width = x.shape
        expected = (
            conv_output_side(height, k.shape[2], padding, stride),
            conv_output_side(width, k.shape[2], padding, stride),
        )
        functional = F.conv2d_batch(x, k, stride, padding)
        assert functional.shape == (batch, k.shape[0], *expected)
        photonic = PhotonicConvolution().convolve(x, k, stride, padding)
        assert photonic.shape == (batch, k.shape[0], *expected)
