"""Tests for the optical link budget and ENOB analysis."""

import math

import pytest

from repro.photonics.laser import LaserSpec
from repro.photonics.link_budget import LinkBudget, max_banks_for_bits
from repro.photonics.waveguide import Waveguide


class TestPowerBudget:
    def test_path_transmission_includes_split(self):
        one = LinkBudget(num_channels=10, num_banks=1)
        four = LinkBudget(num_channels=10, num_banks=4)
        assert four.path_transmission == pytest.approx(one.path_transmission / 4)

    def test_bus_loss_applies(self):
        lossless = LinkBudget(num_channels=8)
        lossy = LinkBudget(num_channels=8, bus=Waveguide(length_m=0.05))
        assert lossy.per_channel_power_at_detector_w < (
            lossless.per_channel_power_at_detector_w
        )

    def test_total_power_scales_with_channels(self):
        small = LinkBudget(num_channels=8)
        large = LinkBudget(num_channels=16)
        assert large.total_power_at_detector_w == pytest.approx(
            2 * small.total_power_at_detector_w
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LinkBudget(num_channels=0)
        with pytest.raises(ValueError):
            LinkBudget(num_channels=4, num_banks=0)
        with pytest.raises(ValueError):
            LinkBudget(num_channels=4, modulator_loss_db=-1.0)


class TestSnrAndBits:
    def test_snr_positive_and_finite(self):
        budget = LinkBudget(num_channels=363, num_banks=96)
        assert 0 < budget.snr < math.inf

    def test_snr_db_consistent(self):
        budget = LinkBudget(num_channels=64, num_banks=8)
        assert budget.snr_db == pytest.approx(10 * math.log10(budget.snr))

    def test_more_banks_fewer_bits(self):
        base = LinkBudget(num_channels=363)
        assert (
            base.scaled_to_banks(384).effective_bits
            < base.scaled_to_banks(96).effective_bits
            < base.scaled_to_banks(1).effective_bits
        )

    def test_half_bit_per_doubling_asymptotically(self):
        # In the thermal-noise-limited regime SNR ~ 1/K^2 -> 1 bit per
        # doubling; shot-limited gives half a bit.  Check monotone decay
        # between those slopes.
        base = LinkBudget(num_channels=363)
        k1 = base.scaled_to_banks(256).effective_bits
        k2 = base.scaled_to_banks(512).effective_bits
        assert 0.3 < k1 - k2 < 1.2

    def test_more_laser_power_more_bits(self):
        weak = LinkBudget(num_channels=64, laser=LaserSpec(power_w=0.1e-3))
        strong = LinkBudget(num_channels=64, laser=LaserSpec(power_w=10e-3))
        assert strong.effective_bits > weak.effective_bits


class TestMaxBanks:
    def test_binary_search_is_tight(self):
        budget = LinkBudget(num_channels=363)
        limit = max_banks_for_bits(budget, 6.0)
        assert budget.scaled_to_banks(limit).effective_bits >= 6.0
        assert budget.scaled_to_banks(limit + 1).effective_bits < 6.0

    def test_alexnet_conv4_k_feasible_at_low_precision(self):
        # 384 parallel banks must be feasible at some useful precision.
        budget = LinkBudget(num_channels=3456)
        limit = max_banks_for_bits(budget, 4.0)
        assert limit >= 384

    def test_impossible_requirement_raises(self):
        budget = LinkBudget(num_channels=8, laser=LaserSpec(power_w=1e-9))
        with pytest.raises(ValueError):
            max_banks_for_bits(budget, 14.0)

    def test_higher_requirement_fewer_banks(self):
        budget = LinkBudget(num_channels=363)
        assert max_banks_for_bits(budget, 8.0) < max_banks_for_bits(budget, 4.0)
