"""Unit contract for the process-parallel grid executor.

:func:`repro.analysis.run_grid` backs every ``workers=`` knob in the
analysis layer, so its determinism contract is pinned directly: ordered
merge, byte-identical serial/parallel results, strict argument
validation, exception propagation, and a genuine serial short-circuit
for ``workers=1`` (no :mod:`multiprocessing` involvement at all).

The cell functions live at module level on purpose — that is the
spawn-safety requirement ``run_grid`` imposes on its callers, and these
tests exercise it under the ``spawn`` start method explicitly.
"""

import multiprocessing

import numpy as np
import pytest

from repro.analysis import START_METHODS, resolve_start_method, run_grid


def square(x):
    return x * x


def tag_with_pid(x):
    import os

    return (x, os.getpid())


def fail_on_three(x):
    if x == 3:
        raise RuntimeError(f"cell {x} exploded")
    return x


def scaled_arange(args):
    scale, count = args
    return scale * np.arange(count, dtype=float)


class TestResolveStartMethod:
    def test_auto_picks_a_supported_method(self):
        method = resolve_start_method()
        assert method in multiprocessing.get_all_start_methods()

    def test_auto_prefers_fork_when_available(self):
        if "fork" in multiprocessing.get_all_start_methods():
            assert resolve_start_method("auto") == "fork"
        else:
            assert resolve_start_method("auto") == "spawn"

    def test_explicit_methods_round_trip(self):
        for method in multiprocessing.get_all_start_methods():
            if method in START_METHODS:
                assert resolve_start_method(method) == method

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown start method"):
            resolve_start_method("threads")


class TestRunGridContract:
    def test_serial_is_a_plain_map(self):
        assert run_grid(square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]

    def test_serial_short_circuit_never_forks(self):
        """workers=1 must not spawn: every cell runs in this process."""
        import os

        results = run_grid(tag_with_pid, list(range(6)), workers=1)
        assert [x for x, _ in results] == list(range(6))
        assert {pid for _, pid in results} == {os.getpid()}

    def test_parallel_merges_in_cell_order(self):
        cells = list(range(20))
        assert run_grid(square, cells, workers=4) == [x * x for x in cells]

    def test_parallel_byte_identical_to_serial_on_arrays(self):
        cells = [(0.1, 50), (2.5, 17), (1e-9, 80), (3.0, 1)]
        serial = run_grid(scaled_arange, cells)
        fanned = run_grid(scaled_arange, cells, workers=3)
        for a, b in zip(serial, fanned):
            assert a.tobytes() == b.tobytes()

    def test_spawn_start_method_smoke(self):
        """Module-level cells survive the re-import a spawn worker does."""
        results = run_grid(
            square, [2, 7, 9], workers=2, start_method="spawn"
        )
        assert results == [4, 49, 81]

    def test_single_cell_stays_serial(self):
        import os

        [(value, pid)] = run_grid(tag_with_pid, [5], workers=8)
        assert value == 5
        assert pid == os.getpid()

    def test_empty_grid(self):
        assert run_grid(square, [], workers=4) == []

    def test_cell_exception_propagates(self):
        with pytest.raises(RuntimeError, match="cell 3 exploded"):
            run_grid(fail_on_three, [1, 2, 3, 4], workers=2)
        with pytest.raises(RuntimeError, match="cell 3 exploded"):
            run_grid(fail_on_three, [1, 2, 3, 4], workers=1)


class TestRunGridValidation:
    def test_non_callable_rejected(self):
        with pytest.raises(ValueError, match="must be callable"):
            run_grid("not a function", [1, 2])

    @pytest.mark.parametrize("workers", [0, -1, 2.0, "2", True, False])
    def test_bad_workers_rejected(self, workers):
        with pytest.raises(ValueError, match="workers must be an int"):
            run_grid(square, [1, 2], workers=workers)

    def test_bad_start_method_rejected_before_running(self):
        with pytest.raises(ValueError, match="unknown start method"):
            run_grid(square, [1, 2], workers=2, start_method="bogus")
