"""Tests for the adaptive control plane (core/adaptive.py).

The load-bearing suite: differential pins proving every controller at
its frozen/degenerate setting is bit-identical to the static policy it
subsumes, monotonicity pins for the cost gates, edge cases for the
controller inputs, and the machine-checkable dominance gate of the
policy-evaluation harness.
"""

import math

import numpy as np
import pytest

from repro.analysis import (
    ADAPTIVE_SWEEP_HEADER,
    POLICY_EVAL_HEADER,
    DominanceReport,
    EvalScenario,
    PolicySpec,
    default_policy_grid,
    default_scenarios,
    evaluate_dominance,
    evaluate_policy,
    evaluate_policy_grid,
    pareto_front,
    sweep_adaptive_recalibration,
)
from repro.core.adaptive import (
    DECISION_ACTIONS,
    AdaptiveRecalibration,
    BurnRateAdmission,
    EwmaRecalDecider,
    PressureController,
    simulate_adaptive_serving,
)
from repro.core.cluster import (
    ClusterSimulator,
    ClusterTenant,
    ElasticReallocation,
    simulate_cluster_serving,
)
from repro.core.faults import (
    FaultSchedule,
    RecalibrationPolicy,
    simulate_degraded_serving,
)
from repro.core.simkernel import (
    BatchingPolicy,
    EventLoopKernel,
    KernelPlugin,
)
from repro.core.traffic import PipelineServiceModel
from repro.workloads import (
    cluster_mix,
    fault_scenario,
    lenet5_conv_specs,
    poisson_arrivals,
    serving_network,
)

LENET = serving_network("lenet5")
POLICY = BatchingPolicy.dynamic(4, 1e-4)
RECAL = RecalibrationPolicy(error_threshold=0.05)


def drift_schedule(arrivals, num_cores=2, total_k=0.3):
    horizon = float(arrivals[-1])
    return FaultSchedule.uniform_drift(total_k / horizon, num_cores)


def assert_serving_reports_identical(static, adaptive):
    """Every float stream and record of the two runs must match."""
    for name in ("arrival_s", "dispatch_s", "completion_s"):
        np.testing.assert_array_equal(
            getattr(static, name), getattr(adaptive, name)
        )
    assert tuple(static.batches) == tuple(adaptive.batches)
    assert static.core_busy_s == adaptive.core_busy_s
    np.testing.assert_array_equal(
        static.accuracy_proxy, adaptive.accuracy_proxy
    )
    np.testing.assert_array_equal(
        static.batch_num_cores, adaptive.batch_num_cores
    )
    assert static.batch_snapshots == adaptive.batch_snapshots
    assert static.core_downtime_s == adaptive.core_downtime_s
    assert static.final_core_errors == adaptive.final_core_errors
    assert static.recalibrations == adaptive.recalibrations
    assert static.repartitions == adaptive.repartitions


def assert_cluster_reports_identical(static, adaptive):
    assert static.core_downtime_s == adaptive.core_downtime_s
    assert static.final_core_errors == adaptive.final_core_errors
    assert static.recalibrations == adaptive.recalibrations
    assert static.reallocations == adaptive.reallocations
    for left in static.tenants:
        right = next(
            t for t in adaptive.tenants if t.tenant == left.tenant
        )
        for name in (
            "arrival_s",
            "dispatch_s",
            "completion_s",
            "offered_arrival_s",
            "shed_arrival_s",
            "accuracy_proxy",
            "batch_num_cores",
        ):
            np.testing.assert_array_equal(
                getattr(left, name), getattr(right, name)
            )
        assert tuple(left.batches) == tuple(right.batches)
        assert left.core_busy_s == right.core_busy_s


class TestControllerValidation:
    def test_recalibration_gains(self):
        for bad in (0.0, -0.1, 1.5, math.nan, math.inf):
            with pytest.raises(ValueError, match="smoothing"):
                AdaptiveRecalibration(base=RECAL, smoothing=bad)
        for bad in (-1.0, math.nan, math.inf):
            with pytest.raises(ValueError, match="lead time"):
                AdaptiveRecalibration(base=RECAL, lead_time_s=bad)
        with pytest.raises(ValueError, match="pressure hold"):
            AdaptiveRecalibration(base=RECAL, pressure_hold=0)
        for bad in (0.5, -1.0, math.nan):
            with pytest.raises(ValueError, match="hold ceiling"):
                AdaptiveRecalibration(base=RECAL, hold_ceiling=bad)
        for bad in (0.0, -1.0, math.nan):
            with pytest.raises(ValueError, match="downtime budget"):
                AdaptiveRecalibration(base=RECAL, downtime_budget_s=bad)

    def test_burn_rate_gains(self):
        for bad in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(ValueError, match="SLO latency"):
                BurnRateAdmission(slo_latency_s=bad)
        for bad in (-0.5, math.nan):
            with pytest.raises(ValueError, match="burn rate"):
                BurnRateAdmission(slo_latency_s=1e-3, max_burn_rate=bad)
        with pytest.raises(ValueError, match="window"):
            BurnRateAdmission(slo_latency_s=1e-3, window=0)
        with pytest.raises(ValueError, match="queue cap"):
            BurnRateAdmission(slo_latency_s=1e-3, queue_cap=0)

    def test_pressure_gains(self):
        for bad in (-0.25, math.nan, math.inf):
            with pytest.raises(ValueError, match="gain"):
                PressureController(base=ElasticReallocation(), gain=bad)

    def test_frozen_settings_are_valid(self):
        frozen = AdaptiveRecalibration.frozen(RECAL)
        assert frozen.smoothing == 1.0
        assert frozen.lead_time_s == 0.0
        assert frozen.pressure_hold is None
        assert math.isinf(frozen.downtime_budget_s)
        assert BurnRateAdmission.disabled().enabled is False
        assert PressureController.inert().gain == 0.0


class TestFrozenServingPin:
    """Frozen EWMA controller ≡ static RecalibrationPolicy, bit-exact."""

    def test_frozen_matches_static(self):
        arrivals = poisson_arrivals(2e4, 96, seed=0)
        schedule = drift_schedule(arrivals)
        static = simulate_degraded_serving(
            LENET, arrivals, POLICY, schedule, 2, recalibration=RECAL
        )
        adaptive = simulate_adaptive_serving(
            LENET,
            arrivals,
            POLICY,
            schedule,
            2,
            controller=AdaptiveRecalibration.frozen(RECAL),
        )
        assert_serving_reports_identical(static, adaptive)
        assert static.recalibrations  # the pin must exercise recals
        assert len(adaptive.decisions) == len(adaptive.recalibrations)
        assert all(
            d.action == "recalibrate" for d in adaptive.decisions
        )
        # Frozen estimator: the projection is the raw error, bit-exact.
        assert all(
            d.projected == d.error and d.smoothed == d.error
            for d in adaptive.decisions
        )

    def test_frozen_matches_static_on_scenarios(self):
        arrivals = poisson_arrivals(2e4, 48, seed=4)
        horizon = float(arrivals[-1])
        for name in ("tia-aging", "tia-burnin", "crosstalk-blip"):
            schedule = fault_scenario(name, 2, horizon)
            static = simulate_degraded_serving(
                LENET, arrivals, POLICY, schedule, 2, recalibration=RECAL
            )
            adaptive = simulate_adaptive_serving(
                LENET,
                arrivals,
                POLICY,
                schedule,
                2,
                controller=AdaptiveRecalibration.frozen(RECAL),
            )
            assert_serving_reports_identical(static, adaptive)

    def test_zero_downtime_recalibration(self):
        free = RecalibrationPolicy(
            error_threshold=0.05, iteration_time_s=0.0, overhead_s=0.0
        )
        arrivals = poisson_arrivals(2e4, 48, seed=1)
        schedule = drift_schedule(arrivals)
        static = simulate_degraded_serving(
            LENET, arrivals, POLICY, schedule, 2, recalibration=free
        )
        adaptive = simulate_adaptive_serving(
            LENET,
            arrivals,
            POLICY,
            schedule,
            2,
            controller=AdaptiveRecalibration.frozen(free),
        )
        assert_serving_reports_identical(static, adaptive)
        assert static.core_downtime_s == (0.0, 0.0)
        assert static.recalibrations

    def test_report_surface(self):
        arrivals = poisson_arrivals(2e4, 48, seed=2)
        schedule = drift_schedule(arrivals)
        report = simulate_adaptive_serving(
            LENET,
            arrivals,
            POLICY,
            schedule,
            2,
            controller=AdaptiveRecalibration(base=RECAL, smoothing=0.3),
        )
        text = report.describe()
        assert "controller" in text
        assert "deferred" in text
        assert report.num_deferrals == len(
            [d for d in report.decisions if d.action != "recalibrate"]
        )
        assert all(
            d.action in DECISION_ACTIONS for d in report.decisions
        )


class TestClusterPins:
    """Cluster-level frozen pins: recal, admission, and elastic."""

    @staticmethod
    def _mix(num_requests=64):
        return cluster_mix(
            "interactive-batch",
            rate_rps=400.0,
            num_requests=num_requests,
            seed=1,
        )

    def test_frozen_recal_and_inert_pressure(self):
        tenants, arrivals = self._mix()
        horizon = max(float(a[-1]) for a in arrivals.values())
        schedule = fault_scenario("slow-drift", 6, horizon)
        elastic = ElasticReallocation(pressure_ratio=4.0, min_queue=16)
        static = simulate_cluster_serving(
            tenants,
            arrivals,
            pool_size=6,
            elastic=elastic,
            schedule=schedule,
            recalibration=RECAL,
        )
        adaptive = simulate_cluster_serving(
            tenants,
            arrivals,
            pool_size=6,
            elastic=PressureController.inert(elastic),
            schedule=schedule,
            recalibration=AdaptiveRecalibration.frozen(RECAL),
        )
        assert_cluster_reports_identical(static, adaptive)
        assert static.recalibrations  # the pin must exercise recals

    def test_disabled_burn_matches_occupancy_cap(self):
        tenants, arrivals = self._mix()
        horizon = max(float(a[-1]) for a in arrivals.values())
        schedule = fault_scenario("slow-drift", 6, horizon)
        admission = {
            t.name: BurnRateAdmission.disabled(queue_cap=t.queue_cap)
            for t in tenants
        }
        static = simulate_cluster_serving(
            tenants,
            arrivals,
            pool_size=6,
            schedule=schedule,
            recalibration=RECAL,
        )
        adaptive = simulate_cluster_serving(
            tenants,
            arrivals,
            pool_size=6,
            schedule=schedule,
            recalibration=RECAL,
            admission=admission,
        )
        assert_cluster_reports_identical(static, adaptive)

    def test_disabled_burn_preserves_shedding(self):
        # A tight cap sheds; the disabled burn controller must shed the
        # identical arrivals.
        tenants, arrivals = cluster_mix(
            "interactive-batch",
            rate_rps=8000.0,
            num_requests=96,
            seed=1,
        )
        tenants = tuple(
            ClusterTenant(
                t.name, t.specs, t.policy, weight=t.weight, queue_cap=1
            )
            for t in tenants
        )
        admission = {
            t.name: BurnRateAdmission.disabled(queue_cap=1)
            for t in tenants
        }
        static = simulate_cluster_serving(
            tenants, arrivals, pool_size=6
        )
        adaptive = simulate_cluster_serving(
            tenants, arrivals, pool_size=6, admission=admission
        )
        assert sum(t.num_shed for t in static.tenants) > 0
        assert_cluster_reports_identical(static, adaptive)

    def test_enabled_burn_sheds_on_slo(self):
        tenants, arrivals = cluster_mix(
            "interactive-batch",
            rate_rps=8000.0,
            num_requests=96,
            seed=1,
        )
        admission = {
            t.name: BurnRateAdmission(
                slo_latency_s=1e-6, max_burn_rate=0.0, window=8
            )
            for t in tenants
        }
        report = simulate_cluster_serving(
            tenants, arrivals, pool_size=6, admission=admission
        )
        offered = sum(t.num_offered for t in report.tenants)
        served = sum(t.num_requests for t in report.tenants)
        shed = sum(t.num_shed for t in report.tenants)
        assert served + shed == offered
        assert shed > 0  # an impossible SLO must burn and shed

    def test_admission_validation(self):
        tenants, arrivals = self._mix()
        with pytest.raises(ValueError, match="admission"):
            ClusterSimulator(
                tenants,
                6,
                admission={
                    "nobody": BurnRateAdmission.disabled(queue_cap=4)
                },
            )

    def test_pressure_controller_moves_sooner(self):
        base = ElasticReallocation(pressure_ratio=4.0, min_queue=16)
        hot = PressureController(base=base, gain=0.5)
        ratio, min_queue = hot.thresholds(8.0)
        assert ratio < base.pressure_ratio
        assert min_queue < base.min_queue
        assert hot.thresholds(0.0) == (
            base.pressure_ratio,
            base.min_queue,
        )
        calm_ratio, calm_min = PressureController.inert(base).thresholds(
            1e9
        )
        assert (calm_ratio, calm_min) == (
            base.pressure_ratio,
            base.min_queue,
        )


class TestCostGates:
    def test_downtime_budget_binds(self):
        arrivals = poisson_arrivals(2e4, 96, seed=0)
        schedule = drift_schedule(arrivals, total_k=0.6)
        budget = 1e-9
        report = simulate_adaptive_serving(
            LENET,
            arrivals,
            POLICY,
            schedule,
            2,
            controller=AdaptiveRecalibration(
                base=RECAL, smoothing=1.0, downtime_budget_s=budget
            ),
        )
        # One recal fits under the budget; after it the gate defers.
        worst = RECAL.downtime_s(RECAL.max_iterations)
        assert all(
            downtime <= budget + worst
            for downtime in report.core_downtime_s
        )
        assert any(
            d.action == "defer-budget" for d in report.decisions
        )
        per_core = {}
        for record in report.recalibrations:
            per_core[record.core] = per_core.get(record.core, 0) + 1
        assert all(count == 1 for count in per_core.values())

    def test_pressure_hold_defers_under_load(self):
        arrivals = poisson_arrivals(5e4, 96, seed=0)
        schedule = drift_schedule(arrivals, total_k=0.6)
        report = simulate_adaptive_serving(
            LENET,
            arrivals,
            POLICY,
            schedule,
            2,
            controller=AdaptiveRecalibration(
                base=RECAL,
                smoothing=1.0,
                pressure_hold=1,
                hold_ceiling=1e6,
            ),
        )
        assert report.decisions
        assert all(
            d.action == "defer-pressure" and d.queued >= 1
            for d in report.decisions
        )
        assert not report.recalibrations

    def test_adaptive_recal_never_worse_than_no_recal(self):
        # Monotonicity pin: at any downtime budget, folding recals in
        # must not hurt the mean accuracy proxy.
        arrivals = poisson_arrivals(2e4, 96, seed=5)
        schedule = drift_schedule(arrivals, total_k=0.6)
        bare = simulate_degraded_serving(
            LENET, arrivals, POLICY, schedule, 2, recalibration=None
        )
        for budget in (1e-4, 1e-3, math.inf):
            adaptive = simulate_adaptive_serving(
                LENET,
                arrivals,
                POLICY,
                schedule,
                2,
                controller=AdaptiveRecalibration(
                    base=RECAL, smoothing=0.3, downtime_budget_s=budget
                ),
            )
            assert (
                adaptive.mean_accuracy_proxy <= bare.mean_accuracy_proxy
            )


class TestDeciderRuntime:
    def test_single_sample_warmup(self):
        # One observation: level seeds from the raw error, no slope.
        decider = EwmaRecalDecider(
            AdaptiveRecalibration(
                base=RECAL, smoothing=0.3, lead_time_s=1.0
            )
        )
        assert decider.observe(0, 0.04, 1.0) == 0.04

    def test_decisions_deterministic(self):
        controller = AdaptiveRecalibration(
            base=RECAL, smoothing=0.3, lead_time_s=0.01
        )
        samples = [(0, 0.01, 1.0), (0, 0.03, 2.0), (0, 0.06, 3.0)]
        left = controller.decider()
        right = controller.decider()
        for core, error, time_s in samples:
            assert left.observe(core, error, time_s) == right.observe(
                core, error, time_s
            )

    def test_single_batch_run(self):
        # EWMA warmup edge: a one-request trace makes exactly one batch.
        arrivals = np.array([1e-4])
        schedule = FaultSchedule.none()
        report = simulate_adaptive_serving(
            LENET,
            arrivals,
            POLICY,
            schedule,
            2,
            controller=AdaptiveRecalibration(base=RECAL, smoothing=0.3),
        )
        assert report.num_requests == 1
        assert len(report.batches) == 1
        assert report.decisions == ()

    def test_burn_rate_zero_offered_load(self):
        admission = BurnRateAdmission(slo_latency_s=1e-3)
        assert admission.burn_rate(np.array([])) == 0.0
        assert not admission.sheds(admission.burn_rate(np.array([])))

    def test_burn_rate_windowing(self):
        admission = BurnRateAdmission(
            slo_latency_s=1.0, max_burn_rate=0.25, window=4
        )
        latencies = np.array([2.0, 2.0, 0.5, 0.5, 0.5, 0.5])
        assert admission.burn_rate(latencies) == 0.0  # old burn aged out
        assert admission.burn_rate(np.array([0.5, 2.0])) == 0.5
        assert admission.sheds(0.5)
        assert not admission.sheds(0.25)


class TestTelemetry:
    def test_dispatch_context_telemetry(self):
        class Probe(KernelPlugin):
            def __init__(self):
                self.snapshots = []

            def on_dispatch_planned(self, ctx, dispatch_s, size):
                self.snapshots.append(ctx.telemetry(dispatch_s))

        arrivals = poisson_arrivals(2e4, 48, seed=0)
        model = PipelineServiceModel.from_specs(
            list(lenet5_conv_specs()), 2
        )
        probe = Probe()
        run = EventLoopKernel(model, POLICY, (probe,)).run(arrivals)
        assert len(probe.snapshots) == len(run.batches)
        for snap in probe.snapshots:
            assert snap.num_stages == 2
            assert len(snap.core_free_s) == 2
            assert len(snap.core_busy_s) == 2
            assert snap.queued >= 0
            assert snap.head >= 0


class TestPolicyEvalHarness:
    def test_validation(self):
        scenario = EvalScenario(
            name="s", fault="slow-drift", mix="interactive-batch"
        )
        with pytest.raises(ValueError, match="scenario"):
            evaluate_policy_grid([], [PolicySpec(name="x")])
        with pytest.raises(ValueError, match="policy"):
            evaluate_policy_grid([scenario], [])
        with pytest.raises(ValueError, match="unique"):
            evaluate_policy_grid(
                [scenario],
                [PolicySpec(name="x"), PolicySpec(name="x")],
            )
        with pytest.raises(ValueError, match="baseline"):
            evaluate_policy_grid(
                [scenario],
                [PolicySpec(name="x", baseline="missing")],
            )
        with pytest.raises(ValueError, match="fault scenario"):
            EvalScenario(name="s", fault="volcano", mix="model-zoo")
        with pytest.raises(ValueError, match="cluster mix"):
            EvalScenario(name="s", fault="slow-drift", mix="nope")
        with pytest.raises(ValueError, match="rate"):
            EvalScenario(
                name="s",
                fault="slow-drift",
                mix="model-zoo",
                rate_rps=0.0,
            )
        with pytest.raises(ValueError, match="request"):
            EvalScenario(
                name="s",
                fault="slow-drift",
                mix="model-zoo",
                num_requests=0,
            )
        with pytest.raises(ValueError, match="core"):
            EvalScenario(
                name="s",
                fault="slow-drift",
                mix="model-zoo",
                pool_size=0,
            )

    def test_outcome_surface_and_conservation(self):
        scenario = EvalScenario(
            name="tiny",
            fault="slow-drift",
            mix="interactive-batch",
            rate_rps=400.0,
            num_requests=48,
            seed=1,
        )
        outcome = evaluate_policy(
            scenario, PolicySpec(name="static-recal", recalibration=RECAL)
        )
        assert outcome.served + outcome.shed == outcome.offered
        assert 0.0 < outcome.availability <= 1.0
        assert outcome.accuracy_error >= 0.0
        assert outcome.p99_latency_s > 0.0
        assert len(outcome.row()) == len(POLICY_EVAL_HEADER)

    def test_dominance_report_mechanics(self):
        scenario = EvalScenario(
            name="tiny",
            fault="tia-aging",
            mix="interactive-batch",
            rate_rps=400.0,
            num_requests=48,
            seed=1,
        )
        outcomes = evaluate_policy_grid(
            [scenario],
            [
                PolicySpec(name="static-recal", recalibration=RECAL),
                PolicySpec(
                    name="adaptive-recal",
                    recalibration=AdaptiveRecalibration.frozen(RECAL),
                    baseline="static-recal",
                ),
            ],
        )
        report = DominanceReport.from_outcomes(outcomes)
        # A frozen controller is bit-identical to its baseline, so it
        # can never *strictly* dominate it.
        assert report.wins == ()
        assert not report.passes()
        front = pareto_front(outcomes)
        assert front  # something is always non-dominated
        text = report.describe()
        assert "pareto[tiny]" in text
        assert "dominance" in text

    def test_default_grid_passes_dominance_gate(self):
        # The acceptance gate: at least one adaptive policy strictly
        # dominates its static baseline on >= 2 named fault scenarios
        # and sits on those scenarios' Pareto fronts.
        report = evaluate_dominance(
            default_scenarios(), default_policy_grid()
        )
        assert report.passes(min_scenarios=2), report.describe()
        winners = report.winning_policies(min_scenarios=2)
        assert "adaptive-recal" in winners
        dominated_faults = {
            scenario.split("/")[0]
            for scenario, policy, _ in report.wins
            if policy == "adaptive-recal"
        }
        assert len(dominated_faults) >= 2


class TestAdaptiveSweep:
    def test_controller_cells_and_frozen_tie(self):
        arrivals = poisson_arrivals(2e4, 48, seed=3)
        schedule = drift_schedule(arrivals)
        points = sweep_adaptive_recalibration(
            LENET,
            POLICY,
            schedule,
            [None, RECAL, AdaptiveRecalibration.frozen(RECAL)],
            arrivals,
            2,
        )
        assert [p.controller for p in points] == [
            "none",
            "recal",
            "recal-frozen",
        ]
        for point in points:
            assert len(point.row()) == len(ADAPTIVE_SWEEP_HEADER)
        static, frozen = points[1], points[2]
        assert (
            static.report.mean_accuracy_proxy
            == frozen.report.mean_accuracy_proxy
        )
        assert static.total_downtime_s == frozen.total_downtime_s
        assert points[0].total_downtime_s == 0.0

    def test_empty_axis(self):
        arrivals = poisson_arrivals(2e4, 8, seed=0)
        with pytest.raises(ValueError, match="controller"):
            sweep_adaptive_recalibration(
                LENET,
                POLICY,
                FaultSchedule.none(),
                [],
                arrivals,
                2,
            )
