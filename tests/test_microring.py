"""Tests for the microring resonator model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.constants import C_BAND_CENTER_HZ
from repro.photonics.microring import Microring, MicroringDesign, rings_area_m2


class TestMicroringDesign:
    def test_defaults_valid(self):
        design = MicroringDesign()
        assert design.radius_m > 0
        assert design.quality_factor > 0

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            MicroringDesign(radius_m=0.0)

    def test_rejects_nonpositive_q(self):
        with pytest.raises(ValueError):
            MicroringDesign(quality_factor=-1.0)

    def test_rejects_bad_peak_transmission(self):
        with pytest.raises(ValueError):
            MicroringDesign(peak_drop_transmission=1.5)
        with pytest.raises(ValueError):
            MicroringDesign(peak_drop_transmission=0.0)

    def test_rejects_bad_min_transmission(self):
        with pytest.raises(ValueError):
            MicroringDesign(min_through_transmission=1.0)
        with pytest.raises(ValueError):
            MicroringDesign(min_through_transmission=-0.1)

    def test_circumference(self):
        design = MicroringDesign(radius_m=10e-6)
        assert design.circumference_m == pytest.approx(2 * math.pi * 10e-6)

    def test_footprint_area(self):
        design = MicroringDesign(footprint_m=25e-6)
        assert design.footprint_area_m2 == pytest.approx(625e-12)

    def test_fsr_formula(self):
        design = MicroringDesign(radius_m=10e-6, group_index=4.2)
        expected = 299_792_458.0 / (4.2 * 2 * math.pi * 10e-6)
        assert design.free_spectral_range_hz() == pytest.approx(expected)

    def test_fsr_decreases_with_radius(self):
        small = MicroringDesign(radius_m=5e-6)
        large = MicroringDesign(radius_m=20e-6)
        assert small.free_spectral_range_hz() > large.free_spectral_range_hz()

    def test_linewidth_is_resonance_over_q(self):
        design = MicroringDesign(quality_factor=10_000)
        assert design.linewidth_hz(193e12) == pytest.approx(19.3e9)

    def test_linewidth_rejects_nonpositive_resonance(self):
        with pytest.raises(ValueError):
            MicroringDesign().linewidth_hz(0.0)

    def test_finesse_is_fsr_over_linewidth(self):
        design = MicroringDesign()
        resonance = C_BAND_CENTER_HZ
        expected = design.free_spectral_range_hz() / design.linewidth_hz(resonance)
        assert design.finesse(resonance) == pytest.approx(expected)


class TestMicroringTransfer:
    def make_ring(self, **kwargs) -> Microring:
        return Microring(C_BAND_CENTER_HZ, MicroringDesign(**kwargs))

    def test_on_resonance_drop_is_peak(self):
        ring = self.make_ring(peak_drop_transmission=0.9)
        assert ring.drop_at_target() == pytest.approx(0.9)

    def test_on_resonance_through_is_minimum(self):
        ring = self.make_ring(min_through_transmission=0.05)
        assert ring.through_at_target() == pytest.approx(0.05)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            Microring(0.0)

    def test_transmissions_bounded(self):
        ring = self.make_ring()
        detunings = np.linspace(-50, 50, 201) * ring.linewidth_hz
        for delta in detunings:
            ring.detuning_hz = float(delta)
            drop = ring.drop_at_target()
            through = ring.through_at_target()
            assert 0.0 <= drop <= 1.0
            assert 0.0 <= through <= 1.0

    def test_drop_plus_through_is_unity_for_ideal_ring(self):
        ring = self.make_ring(peak_drop_transmission=1.0, min_through_transmission=0.0)
        for detuning in (0.0, 0.5, 2.0, 10.0):
            ring.detuning_hz = detuning * ring.linewidth_hz
            total = ring.drop_at_target() + ring.through_at_target()
            assert total == pytest.approx(1.0)

    def test_half_linewidth_detuning_gives_half_drop(self):
        ring = self.make_ring(peak_drop_transmission=1.0)
        ring.detuning_hz = 0.5 * ring.linewidth_hz
        assert ring.drop_at_target() == pytest.approx(0.5)

    def test_drop_decreases_monotonically_with_detuning(self):
        ring = self.make_ring()
        previous = 1.1
        for detuning in np.linspace(0, 20, 41):
            ring.detuning_hz = detuning * ring.linewidth_hz
            drop = ring.drop_at_target()
            assert drop < previous
            previous = drop

    def test_lorentzian_symmetric(self):
        ring = self.make_ring()
        ring.detuning_hz = 3 * ring.linewidth_hz
        positive = ring.drop_at_target()
        ring.detuning_hz = -3 * ring.linewidth_hz
        assert ring.drop_at_target() == pytest.approx(positive)

    def test_vectorized_over_carriers(self):
        ring = self.make_ring()
        carriers = np.array([ring.resonance_hz, ring.resonance_hz + 100e9])
        drops = ring.drop_transmission(carriers)
        assert drops.shape == (2,)
        assert drops[0] > drops[1]


class TestMicroringCalibration:
    def make_ring(self, **kwargs) -> Microring:
        return Microring(C_BAND_CENTER_HZ, MicroringDesign(**kwargs))

    @given(target=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_drop_inversion_roundtrip(self, target):
        ring = self.make_ring(peak_drop_transmission=1.0)
        ring.set_drop_transmission(target)
        assert ring.drop_at_target() == pytest.approx(target, rel=1e-9)

    def test_drop_inversion_rejects_out_of_range(self):
        ring = self.make_ring(peak_drop_transmission=0.9)
        with pytest.raises(ValueError):
            ring.detuning_for_drop(0.95)
        with pytest.raises(ValueError):
            ring.detuning_for_drop(0.0)

    @given(target=st.floats(min_value=0.0, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_through_inversion_roundtrip(self, target):
        ring = self.make_ring()
        detuning = ring.detuning_for_through(target)
        ring.detuning_hz = detuning
        assert ring.through_at_target() == pytest.approx(target, abs=1e-9)

    def test_through_inversion_rejects_out_of_range(self):
        ring = self.make_ring(min_through_transmission=0.1)
        with pytest.raises(ValueError):
            ring.detuning_for_through(0.05)
        with pytest.raises(ValueError):
            ring.detuning_for_through(1.0)

    def test_zero_detuning_for_peak_drop(self):
        ring = self.make_ring()
        assert ring.detuning_for_drop(1.0) == pytest.approx(0.0)


class TestRingsArea:
    def test_paper_conv4_area(self):
        # 3456 rings at (25 um)^2 = 2.16 mm^2 — the paper's "2.2 mm^2".
        area = rings_area_m2(3456)
        assert area * 1e6 == pytest.approx(2.16, rel=1e-2)

    def test_zero_rings_zero_area(self):
        assert rings_area_m2(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            rings_area_m2(-1)

    def test_scales_linearly(self):
        assert rings_area_m2(200) == pytest.approx(2 * rings_area_m2(100))
