"""Tests for the reference model builders."""

import numpy as np
import pytest

from repro.nn import build_alexnet, build_lenet5, build_vgg16
from repro.workloads import ALEXNET_CONV_LAYERS, VGG16_CONV_LAYERS


class TestAlexNet:
    def test_paper_geometry(self):
        net = build_alexnet(include_classifier=False)
        specs = net.conv_specs()
        assert [spec.name for spec in specs] == [
            "conv1",
            "conv2",
            "conv3",
            "conv4",
            "conv5",
        ]
        # Must match the workload table used by the analytics exactly.
        for built, table in zip(specs, ALEXNET_CONV_LAYERS):
            assert built.n == table.n
            assert built.m == table.m
            assert built.nc == table.nc
            assert built.num_kernels == table.num_kernels
            assert built.s == table.s
            assert built.p == table.p

    def test_feature_shapes(self):
        net = build_alexnet(include_classifier=False)
        assert net.output_shape == (256, 6, 6)

    def test_classifier_output(self):
        net = build_alexnet(scale=0.05, num_classes=10)
        assert net.output_shape == (10,)

    def test_scaled_forward_runs(self):
        net = build_alexnet(scale=0.05, include_classifier=False, seed=1)
        out = net.forward(np.random.default_rng(0).normal(size=(3, 224, 224)).astype(np.float32))
        assert out.shape[1:] == (6, 6)

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            build_alexnet(scale=0.0)
        with pytest.raises(ValueError):
            build_alexnet(scale=1.5)

    def test_seed_reproducible(self):
        a = build_alexnet(scale=0.05, seed=7, include_classifier=False)
        b = build_alexnet(scale=0.05, seed=7, include_classifier=False)
        assert np.array_equal(a.conv_layers()[0].weights, b.conv_layers()[0].weights)

    def test_full_scale_parameter_count_in_range(self):
        # Conv parameters of single-tower AlexNet: ~3.7 M.
        net = build_alexnet(include_classifier=False)
        assert 3.0e6 < net.num_parameters() < 4.5e6


class TestLeNet5:
    def test_output_is_distribution(self):
        net = build_lenet5()
        out = net.forward(np.random.default_rng(1).normal(size=(1, 32, 32)))
        assert out.shape == (10,)
        assert out.sum() == pytest.approx(1.0)
        assert np.all(out >= 0)

    def test_conv_specs(self):
        specs = build_lenet5().conv_specs()
        assert [spec.num_kernels for spec in specs] == [6, 16, 120]
        assert [spec.n for spec in specs] == [32, 14, 5]

    def test_custom_classes(self):
        assert build_lenet5(num_classes=7).output_shape == (7,)


class TestVgg16:
    def test_thirteen_conv_layers(self):
        net = build_vgg16(scale=0.05)
        assert len(net.conv_layers()) == 13

    def test_specs_match_workload_table(self):
        net = build_vgg16(scale=1.0)
        for built, table in zip(net.conv_specs(), VGG16_CONV_LAYERS):
            assert built.n == table.n
            assert built.nc == table.nc
            assert built.num_kernels == table.num_kernels

    def test_feature_output_shape(self):
        net = build_vgg16(scale=0.05)
        # 224 halved five times = 7.
        assert net.output_shape[1:] == (7, 7)

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            build_vgg16(scale=-0.1)

    def test_classifier_head(self):
        net = build_vgg16(scale=0.02, include_classifier=True, num_classes=5)
        assert net.output_shape == (5,)
